//! The typed scatter/gather execution layer.
//!
//! Every distributed operation the coordinator performs — queries,
//! barriers, migrations, probes — is one implementation of
//! [`DistributedOp`]: a small value that knows which workers to contact,
//! what [`Request`] to send each one, how to check/decode each worker's
//! [`Response`] into a typed partial result, and how to merge the
//! partials into the operation's output. The [`Executor`] owns everything
//! those implementations share: parallel fan-out over scoped threads,
//! per-operation timeout/retry policy ([`OpPolicy`]), and per-operation
//! telemetry ([`OpStats`]) with wire-byte accounting from the fabric's
//! counters.
//!
//! # Retry semantics
//!
//! RPCs are at-most-once: a timed-out sub-query may or may not have been
//! executed by the worker. The executor therefore retries **only**
//! operations that declare themselves idempotent
//! ([`DistributedOp::idempotent`]) — pure reads plus writes that are safe
//! to apply twice (flush pings, eviction, continuous-query registration).
//! Migration steps (`extract`/`adopt`/`promote`) never retry: a repeated
//! extract after a lost reply would discard data. Retries are
//! deterministic: a fixed attempt budget with linear backoff, counted in
//! [`OpStats::retries`].
//!
//! # Adding a new operation
//!
//! 1. Add the `Request`/`Response` message pair in
//!    [`protocol`](crate::protocol) and a worker handler row in the
//!    worker's dispatch table.
//! 2. Implement [`DistributedOp`] (targets / request / decode / merge).
//! 3. Call [`Executor::execute`] from a thin coordinator wrapper.
//!
//! The executor itself needs no changes — see [`TopCellsOp`] for a
//! complete example.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use parking_lot::Mutex;
use stcam_camnet::Observation;
use stcam_codec::{decode_from_slice, encode_to_vec};
use stcam_geo::{BBox, CellId, Point, TimeInterval, Timestamp};
use stcam_net::{Endpoint, NetError, NodeId};

use crate::continuous::{ContinuousQueryId, Predicate};
use crate::error::StcamError;
use crate::health::HealthView;
use crate::partition::PartitionMap;
use crate::protocol::{
    DigestReport, GridSpecMsg, Request, Response, SegmentDigestEntry, WorkerStatsMsg,
};

// ----------------------------------------------------------------------
// Policy and telemetry
// ----------------------------------------------------------------------

/// Timeout/retry policy of one operation class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpPolicy {
    /// Per-sub-query RPC timeout.
    pub timeout: StdDuration,
    /// Total attempts per sub-query (1 = no retry). Only idempotent
    /// operations ever use more than one.
    pub max_attempts: u32,
    /// Base backoff between attempts; attempt `n` sleeps `n × backoff`
    /// (linear, deterministic).
    pub backoff: StdDuration,
}

impl OpPolicy {
    /// The standard policy: the caller's total timeout budget split
    /// across up to three attempts with 10 ms linear backoff. Splitting
    /// (rather than multiplying) keeps the worst-case latency against a
    /// genuinely dead worker at ≈ `timeout`, the same bound a
    /// non-retrying caller would see, while still recovering from
    /// transiently lost messages well before that bound.
    pub fn new(timeout: StdDuration) -> Self {
        OpPolicy {
            timeout: timeout / 3,
            max_attempts: 3,
            backoff: StdDuration::from_millis(10),
        }
    }

    /// A single-attempt policy (used for liveness probes, where a timeout
    /// *is* the signal).
    pub fn no_retry(timeout: StdDuration) -> Self {
        OpPolicy {
            timeout,
            max_attempts: 1,
            backoff: StdDuration::ZERO,
        }
    }
}

/// Cumulative telemetry of one operation class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpStats {
    /// Times the operation was invoked.
    pub invocations: u64,
    /// Sub-query attempts issued (fan-out × invocations, plus retries).
    pub sub_queries: u64,
    /// Sub-query attempts that were deterministic retries after a
    /// timeout.
    pub retries: u64,
    /// Sub-queries whose final attempt failed.
    pub failures: u64,
    /// Sub-queries re-issued to a replica after the primary failed
    /// (degraded-path reads only).
    pub failovers: u64,
    /// Wire bytes sent by the coordinator for this operation.
    pub bytes_sent: u64,
    /// Wire bytes received by the coordinator for this operation.
    pub bytes_received: u64,
    /// Wall-clock microseconds spent in the scatter/gather phase
    /// (issuing sub-queries and collecting responses).
    pub scatter_micros: u64,
    /// Wall-clock microseconds spent merging partials into the output.
    pub merge_micros: u64,
    /// Observation-stream wire bytes moved by anti-entropy repair on this
    /// operation's behalf (booked by the repair driver against the
    /// "repair" key; zero elsewhere).
    pub repair_bytes: u64,
    /// Digest/stream repair rounds driven (booked against "repair").
    pub repair_rounds: u64,
}

impl OpStats {
    /// Difference against an earlier snapshot: activity that occurred in
    /// between (saturating).
    pub fn since(&self, earlier: &OpStats) -> OpStats {
        OpStats {
            invocations: self.invocations.saturating_sub(earlier.invocations),
            sub_queries: self.sub_queries.saturating_sub(earlier.sub_queries),
            retries: self.retries.saturating_sub(earlier.retries),
            failures: self.failures.saturating_sub(earlier.failures),
            failovers: self.failovers.saturating_sub(earlier.failovers),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            bytes_received: self.bytes_received.saturating_sub(earlier.bytes_received),
            scatter_micros: self.scatter_micros.saturating_sub(earlier.scatter_micros),
            merge_micros: self.merge_micros.saturating_sub(earlier.merge_micros),
            repair_bytes: self.repair_bytes.saturating_sub(earlier.repair_bytes),
            repair_rounds: self.repair_rounds.saturating_sub(earlier.repair_rounds),
        }
    }
}

// ----------------------------------------------------------------------
// Degraded results and completeness accounting
// ----------------------------------------------------------------------

/// How a read should behave when shards are unreachable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// Fail the whole query with [`StcamError::PartialFailure`] unless
    /// every shard (primary or replica) answered.
    #[default]
    Strict,
    /// Answer from whatever shards survive and report what is missing in
    /// the result's [`Completeness`].
    BestEffort,
}

/// An account of which shards contributed to a degraded query's answer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Completeness {
    /// Shards the query had to cover.
    pub shards_total: usize,
    /// Shards answered by their primary.
    pub shards_from_primary: usize,
    /// Shards answered by a replica after the primary failed.
    pub shards_from_replica: usize,
    /// Shard primaries that contributed nothing: neither the primary nor
    /// any replica answered. Empty iff the answer is complete.
    pub missing: Vec<NodeId>,
    /// `(failed primary, serving replica)` pairs for shards answered via
    /// failover.
    pub replicas_used: Vec<(NodeId, NodeId)>,
    /// Sub-query attempts that were deterministic same-target retries.
    pub retries: u64,
    /// Whether the value is guaranteed to be a subset of the complete
    /// answer. Always true when nothing is missing; under loss it is
    /// false for top-k shapes (kNN, top-cells), where dropping a shard
    /// can *promote* wrong items into the result rather than merely
    /// omitting rows.
    pub subset: bool,
}

impl Completeness {
    /// Whether every shard contributed (directly or via a replica).
    pub fn is_full(&self) -> bool {
        self.missing.is_empty()
    }

    /// Fraction of shards that answered, in `[0, 1]` (1 when the query
    /// had no shards to cover).
    pub fn fraction(&self) -> f64 {
        if self.shards_total == 0 {
            1.0
        } else {
            (self.shards_total - self.missing.len()) as f64 / self.shards_total as f64
        }
    }

    /// Folds another phase's account into this one (used by composed
    /// queries such as two-phase kNN).
    pub fn absorb(&mut self, other: Completeness) {
        self.shards_total += other.shards_total;
        self.shards_from_primary += other.shards_from_primary;
        self.shards_from_replica += other.shards_from_replica;
        for node in other.missing {
            if !self.missing.contains(&node) {
                self.missing.push(node);
            }
        }
        self.replicas_used.extend(other.replicas_used);
        self.retries += other.retries;
        self.subset = self.subset && other.subset;
    }
}

/// A best-effort query result: the merged value plus the account of
/// which shards stand behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct Degraded<T> {
    /// The merged answer over the shards that responded.
    pub value: T,
    /// Which shards contributed and which are missing.
    pub completeness: Completeness,
}

// ----------------------------------------------------------------------
// The operation abstraction
// ----------------------------------------------------------------------

/// One distributed operation: scatter targets, per-worker request,
/// response decoding, and partial-result merging.
///
/// Implementations are plain values consumed by [`Executor::execute`]
/// (or borrowed by [`Executor::run`] when the caller wants the raw
/// per-worker results, e.g. liveness probing).
pub trait DistributedOp: Sync {
    /// What one worker contributes.
    type Partial: Send;
    /// What the whole operation yields.
    type Output;

    /// Stable operation name — the key for policy overrides and
    /// [`OpStats`] aggregation.
    fn name(&self) -> &'static str;

    /// Whether a sub-query may safely be retried after a timeout (the
    /// worker may or may not have executed the lost attempt).
    fn idempotent(&self) -> bool {
        false
    }

    /// Whether a shard's sub-query may be answered from a ring
    /// successor's replica log when the primary is unreachable (the
    /// degraded read path). Only pure per-shard reads qualify.
    fn replica_readable(&self) -> bool {
        false
    }

    /// Whether merging fewer shards than targeted still yields a subset
    /// of the complete answer. True for unions and per-bucket sums;
    /// false for top-k shapes, where a lost shard can promote items that
    /// the complete answer would have displaced.
    fn subset_on_loss(&self) -> bool {
        true
    }

    /// The workers this operation must contact, given the current
    /// partition map and alive set.
    fn targets(&self, partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId>;

    /// The request to send worker `to`.
    fn request(&self, to: NodeId) -> Request;

    /// Checks and converts one worker's response into a partial result.
    fn decode(&self, response: Response) -> Result<Self::Partial, StcamError>;

    /// Merges the per-worker partials (in target order) into the output.
    fn merge(self, partials: Vec<(NodeId, Self::Partial)>) -> Self::Output;
}

// ----------------------------------------------------------------------
// The executor
// ----------------------------------------------------------------------

/// State shared by every [`Executor`] of one logical client: policy
/// overrides, per-operation telemetry, the health view, and the
/// replication factor.
///
/// The coordinator's control-plane executor and the query plane's pooled
/// executors all hold one `Arc<ExecShared>`, so an operation books into
/// the same [`OpStats`] registry no matter which fabric endpoint carried
/// it — telemetry stays a single coherent account under concurrency.
#[derive(Debug)]
pub(crate) struct ExecShared {
    default_policy: OpPolicy,
    overrides: Mutex<HashMap<&'static str, OpPolicy>>,
    stats: Mutex<BTreeMap<&'static str, OpStats>>,
    /// Per-node suspicion, fed by every member endpoint's call observer:
    /// each RPC outcome — probe, flush, sub-query, failover attempt —
    /// updates it.
    health: Arc<HealthView>,
    /// Replication factor of the ring (0 disables replica failover).
    replication: AtomicUsize,
}

impl ExecShared {
    fn new(default_policy: OpPolicy) -> Self {
        ExecShared {
            default_policy,
            overrides: Mutex::new(HashMap::new()),
            stats: Mutex::new(BTreeMap::new()),
            health: Arc::new(HealthView::new()),
            replication: AtomicUsize::new(0),
        }
    }
}

/// Per-scatter wire-byte accumulator. Bytes are counted at each call
/// site (payload + envelope overhead) instead of diffing endpoint
/// counters, so concurrent operations sharing an endpoint never
/// attribute each other's traffic.
#[derive(Default)]
struct WireTally {
    sent: AtomicU64,
    received: AtomicU64,
}

impl WireTally {
    fn sent(&self, payload_len: usize) {
        self.sent.fetch_add(
            payload_len as u64 + stcam_net::WIRE_OVERHEAD,
            Ordering::Relaxed,
        );
    }
    fn received(&self, payload_len: usize) {
        self.received.fetch_add(
            payload_len as u64 + stcam_net::WIRE_OVERHEAD,
            Ordering::Relaxed,
        );
    }
}

/// Owns scatter/gather fan-out, retry policy, and per-op telemetry for
/// every [`DistributedOp`].
#[derive(Debug)]
pub struct Executor {
    endpoint: Endpoint,
    shared: Arc<ExecShared>,
}

impl Executor {
    /// Creates an executor speaking through `endpoint` with
    /// `default_policy` for operations without an override. The executor
    /// installs the endpoint's call observer so every RPC outcome feeds
    /// its [`HealthView`].
    pub fn new(endpoint: Endpoint, default_policy: OpPolicy) -> Self {
        Self::with_shared(endpoint, Arc::new(ExecShared::new(default_policy)))
    }

    /// Creates an executor over `endpoint` that joins an existing shared
    /// state — same policies, same telemetry registry, same health view.
    /// This is how the query plane's endpoint pool stays one logical
    /// client: N endpoints, one account.
    pub(crate) fn with_shared(endpoint: Endpoint, shared: Arc<ExecShared>) -> Self {
        let feed = Arc::clone(&shared.health);
        endpoint.set_call_observer(Arc::new(move |node, ok| {
            if ok {
                feed.record_success(node);
            } else {
                feed.record_failure(node);
            }
        }));
        Executor { endpoint, shared }
    }

    /// The shared policy/telemetry/health state, for building further
    /// executors that join this one's account.
    pub(crate) fn shared(&self) -> Arc<ExecShared> {
        Arc::clone(&self.shared)
    }

    /// The underlying fabric endpoint (also used for one-way traffic
    /// such as ingest routing and notification polling).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The live per-node suspicion view.
    pub fn health(&self) -> &Arc<HealthView> {
        &self.shared.health
    }

    /// Sets the ring replication factor consulted by replica failover
    /// (how many successors may hold a shard's replica log).
    pub fn set_replication(&self, replication: usize) {
        self.shared
            .replication
            .store(replication, Ordering::Relaxed);
    }

    /// Installs a policy override for the named operation.
    pub fn set_policy(&self, op: &'static str, policy: OpPolicy) {
        self.shared.overrides.lock().insert(op, policy);
    }

    /// The effective policy of the named operation.
    pub fn policy_for(&self, op: &str) -> OpPolicy {
        self.shared
            .overrides
            .lock()
            .get(op)
            .copied()
            .unwrap_or(self.shared.default_policy)
    }

    /// A snapshot of per-op telemetry, sorted by operation name.
    pub fn op_stats(&self) -> Vec<(&'static str, OpStats)> {
        self.shared
            .stats
            .lock()
            .iter()
            .map(|(&name, &s)| (name, s))
            .collect()
    }

    /// Books one anti-entropy round and its streamed observation bytes
    /// against the "repair" telemetry key (the repair driver calls this
    /// once per digest/stream round).
    pub(crate) fn note_repair(&self, rounds: u64, bytes: u64) {
        let mut stats = self.shared.stats.lock();
        let entry = stats.entry("repair").or_default();
        entry.repair_rounds += rounds;
        entry.repair_bytes += bytes;
    }

    /// Telemetry of one operation (zeros when never invoked).
    pub fn stats_for(&self, op: &str) -> OpStats {
        self.shared
            .stats
            .lock()
            .get(op)
            .copied()
            .unwrap_or_default()
    }

    /// Runs the full operation: scatter, gather, merge. Any sub-query
    /// failure (after retries) fails the whole operation.
    ///
    /// # Errors
    ///
    /// Propagates the first failed sub-query's error.
    pub fn execute<O: DistributedOp>(
        &self,
        op: O,
        partition: &PartitionMap,
        alive: &HashSet<NodeId>,
    ) -> Result<O::Output, StcamError> {
        let name = op.name();
        let results = self.run(&op, partition, alive);
        let mut partials = Vec::with_capacity(results.len());
        for (worker, result) in results {
            partials.push((worker, result?));
        }
        let started = Instant::now();
        let output = op.merge(partials);
        let merge_micros = started.elapsed().as_micros() as u64;
        self.shared
            .stats
            .lock()
            .entry(name)
            .or_default()
            .merge_micros += merge_micros;
        Ok(output)
    }

    /// Scatters the operation and returns the raw per-worker outcomes in
    /// target order, without failing on individual errors and without
    /// merging. Used when failures are data (liveness probes).
    pub fn run<O: DistributedOp>(
        &self,
        op: &O,
        partition: &PartitionMap,
        alive: &HashSet<NodeId>,
    ) -> Vec<(NodeId, Result<O::Partial, StcamError>)> {
        let targets = op.targets(partition, alive);
        let policy = self.policy_for(op.name());
        let tally = WireTally::default();
        let retries = AtomicU64::new(0);
        let started = Instant::now();
        let results: Vec<(NodeId, Result<O::Partial, StcamError>)> = if targets.is_empty() {
            Vec::new()
        } else if targets.len() == 1 {
            // Single-target fast path: no thread spawn.
            let worker = targets[0];
            vec![(worker, self.attempt(op, worker, &policy, &retries, &tally))]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = targets
                    .iter()
                    .map(|&worker| {
                        let policy = &policy;
                        let retries = &retries;
                        let tally = &tally;
                        scope.spawn(move || {
                            (worker, self.attempt(op, worker, policy, retries, tally))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scatter thread panicked"))
                    .collect()
            })
        };
        let scatter_micros = started.elapsed().as_micros() as u64;
        let retries = retries.into_inner();
        let failures = results.iter().filter(|(_, r)| r.is_err()).count() as u64;
        let mut stats = self.shared.stats.lock();
        let entry = stats.entry(op.name()).or_default();
        entry.invocations += 1;
        entry.sub_queries += targets.len() as u64 + retries;
        entry.retries += retries;
        entry.failures += failures;
        entry.bytes_sent += tally.sent.into_inner();
        entry.bytes_received += tally.received.into_inner();
        entry.scatter_micros += scatter_micros;
        results
    }

    /// One sub-query with the retry loop.
    fn attempt<O: DistributedOp>(
        &self,
        op: &O,
        worker: NodeId,
        policy: &OpPolicy,
        retries: &AtomicU64,
        tally: &WireTally,
    ) -> Result<O::Partial, StcamError> {
        let payload = encode_to_vec(&op.request(worker));
        let mut attempt = 1u32;
        loop {
            tally.sent(payload.len());
            let outcome = self
                .endpoint
                .call(worker, payload.clone(), policy.timeout)
                .map_err(StcamError::from)
                .and_then(|bytes| {
                    tally.received(bytes.len());
                    decode_from_slice::<Response>(&bytes).map_err(StcamError::from)
                })
                .and_then(|response| op.decode(response));
            match outcome {
                Err(StcamError::Net(NetError::Timeout))
                    if op.idempotent() && attempt < policy.max_attempts =>
                {
                    retries.fetch_add(1, Ordering::Relaxed);
                    if !policy.backoff.is_zero() {
                        std::thread::sleep(policy.backoff * attempt);
                    }
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Runs a replica-failover scatter/gather and reports how complete
    /// the merged answer is, instead of failing on lost shards.
    ///
    /// Per shard: the primary is attempted first (with the operation's
    /// normal retry policy); if it fails with a transport error and the
    /// operation is replica-readable, the shard's sub-query is re-issued
    /// to its ring successors — healthiest first, per the
    /// [`HealthView`] — wrapped in [`Request::ReplicaRead`]. A shard is
    /// declared missing only after the primary and every candidate
    /// replica failed. The merge then runs over whatever survived.
    pub fn execute_degraded<O: DistributedOp>(
        &self,
        op: O,
        partition: &PartitionMap,
        alive: &HashSet<NodeId>,
    ) -> Degraded<O::Output> {
        let name = op.name();
        let (outcomes, retries) = self.scatter_with_failover(&op, partition, alive);
        let mut completeness = Completeness {
            shards_total: outcomes.len(),
            retries,
            subset: true,
            ..Completeness::default()
        };
        let mut partials = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            match outcome.result {
                Ok(partial) => {
                    match outcome.via {
                        Some(replica) => {
                            completeness.shards_from_replica += 1;
                            completeness.replicas_used.push((outcome.shard, replica));
                        }
                        None => completeness.shards_from_primary += 1,
                    }
                    partials.push((outcome.shard, partial));
                }
                Err(_) => completeness.missing.push(outcome.shard),
            }
        }
        completeness.subset = completeness.missing.is_empty() || op.subset_on_loss();
        let started = Instant::now();
        let value = op.merge(partials);
        let merge_micros = started.elapsed().as_micros() as u64;
        self.shared
            .stats
            .lock()
            .entry(name)
            .or_default()
            .merge_micros += merge_micros;
        Degraded {
            value,
            completeness,
        }
    }

    /// The degraded-path scatter: per-shard outcomes (in target order)
    /// with the replica that served each failed-over shard, plus the
    /// same-target retry count.
    fn scatter_with_failover<O: DistributedOp>(
        &self,
        op: &O,
        partition: &PartitionMap,
        alive: &HashSet<NodeId>,
    ) -> (Vec<ShardOutcome<O::Partial>>, u64) {
        let targets = op.targets(partition, alive);
        let policy = self.policy_for(op.name());
        let tally = WireTally::default();
        let retries = AtomicU64::new(0);
        let failovers = AtomicU64::new(0);
        let started = Instant::now();
        let outcomes: Vec<ShardOutcome<O::Partial>> = if targets.is_empty() {
            Vec::new()
        } else if targets.len() == 1 {
            vec![self.attempt_with_failover(
                op, targets[0], partition, alive, &policy, &retries, &failovers, &tally,
            )]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = targets
                    .iter()
                    .map(|&shard| {
                        let policy = &policy;
                        let retries = &retries;
                        let failovers = &failovers;
                        let tally = &tally;
                        scope.spawn(move || {
                            self.attempt_with_failover(
                                op, shard, partition, alive, policy, retries, failovers, tally,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scatter thread panicked"))
                    .collect()
            })
        };
        let scatter_micros = started.elapsed().as_micros() as u64;
        let retries = retries.into_inner();
        let failovers = failovers.into_inner();
        let failures = outcomes.iter().filter(|o| o.result.is_err()).count() as u64;
        let mut stats = self.shared.stats.lock();
        let entry = stats.entry(op.name()).or_default();
        entry.invocations += 1;
        entry.sub_queries += targets.len() as u64 + retries + failovers;
        entry.retries += retries;
        entry.failures += failures;
        entry.failovers += failovers;
        entry.bytes_sent += tally.sent.into_inner();
        entry.bytes_received += tally.received.into_inner();
        entry.scatter_micros += scatter_micros;
        (outcomes, retries)
    }

    /// One shard's sub-query on the degraded path: primary first, then —
    /// on a transport failure — each alive ring successor, healthiest
    /// first, until one answers from its replica log.
    #[allow(clippy::too_many_arguments)]
    fn attempt_with_failover<O: DistributedOp>(
        &self,
        op: &O,
        shard: NodeId,
        partition: &PartitionMap,
        alive: &HashSet<NodeId>,
        policy: &OpPolicy,
        retries: &AtomicU64,
        failovers: &AtomicU64,
        tally: &WireTally,
    ) -> ShardOutcome<O::Partial> {
        let primary = self.attempt(op, shard, policy, retries, tally);
        let err = match primary {
            Ok(partial) => {
                return ShardOutcome {
                    shard,
                    result: Ok(partial),
                    via: None,
                }
            }
            Err(e) => e,
        };
        let replication = self.shared.replication.load(Ordering::Relaxed);
        // Only transport failures justify failover: an application-level
        // error from a reachable primary would repeat at any replica.
        if !matches!(err, StcamError::Net(_)) || !op.replica_readable() || replication == 0 {
            return ShardOutcome {
                shard,
                result: Err(err),
                via: None,
            };
        }
        // The same ring-walking rule the acked write path certifies and
        // the repair planner restores: the first `replication` *alive*
        // successors, walking past dead ring members. Reads consult
        // exactly the set writes covered and repair maintains.
        let mut candidates: Vec<NodeId> = partition.alive_successors(shard, replication, alive);
        self.shared.health.rank(&mut candidates);
        for replica in candidates {
            failovers.fetch_add(1, Ordering::Relaxed);
            match self.replica_attempt(op, shard, replica, policy, tally) {
                Ok(partial) => {
                    return ShardOutcome {
                        shard,
                        result: Ok(partial),
                        via: Some(replica),
                    }
                }
                Err(_) => continue,
            }
        }
        ShardOutcome {
            shard,
            result: Err(err),
            via: None,
        }
    }

    /// A single (no-retry) replica-read attempt for `shard`'s sub-query
    /// against `replica`.
    fn replica_attempt<O: DistributedOp>(
        &self,
        op: &O,
        shard: NodeId,
        replica: NodeId,
        policy: &OpPolicy,
        tally: &WireTally,
    ) -> Result<O::Partial, StcamError> {
        let payload = encode_to_vec(&Request::ReplicaRead {
            of: shard,
            inner: Box::new(op.request(shard)),
        });
        tally.sent(payload.len());
        self.endpoint
            .call(replica, payload, policy.timeout)
            .map_err(StcamError::from)
            .and_then(|bytes| {
                tally.received(bytes.len());
                decode_from_slice::<Response>(&bytes).map_err(StcamError::from)
            })
            .and_then(|response| op.decode(response))
    }
}

/// One shard's outcome on the degraded scatter path.
struct ShardOutcome<P> {
    /// The shard primary the sub-query was for.
    shard: NodeId,
    /// The decoded partial, or the *primary's* error when neither the
    /// primary nor any replica answered.
    result: Result<P, StcamError>,
    /// The replica that answered, when the primary did not.
    via: Option<NodeId>,
}

// ----------------------------------------------------------------------
// Partial decoders and target helpers shared by the operations
// ----------------------------------------------------------------------

fn want_ack(response: Response) -> Result<(), StcamError> {
    match response {
        Response::Ack => Ok(()),
        Response::Error(msg) => Err(StcamError::Remote(msg)),
        other => Err(StcamError::Remote(format!("expected ack, got {other:?}"))),
    }
}

fn want_observations(response: Response) -> Result<Vec<Observation>, StcamError> {
    match response {
        Response::Observations(obs) => Ok(obs),
        Response::Error(msg) => Err(StcamError::Remote(msg)),
        other => Err(StcamError::Remote(format!(
            "expected observations, got {other:?}"
        ))),
    }
}

fn want_counts(response: Response) -> Result<Vec<u64>, StcamError> {
    match response {
        Response::Counts(counts) => Ok(counts),
        Response::Error(msg) => Err(StcamError::Remote(msg)),
        other => Err(StcamError::Remote(format!(
            "expected counts, got {other:?}"
        ))),
    }
}

fn want_stats(response: Response) -> Result<WorkerStatsMsg, StcamError> {
    match response {
        Response::Stats(stats) => Ok(stats),
        Response::Error(msg) => Err(StcamError::Remote(msg)),
        other => Err(StcamError::Remote(format!("expected stats, got {other:?}"))),
    }
}

fn want_cell_counts(response: Response) -> Result<Vec<(u32, u64)>, StcamError> {
    match response {
        Response::CellCounts(cells) => Ok(cells),
        Response::Error(msg) => Err(StcamError::Remote(msg)),
        other => Err(StcamError::Remote(format!(
            "expected cell counts, got {other:?}"
        ))),
    }
}

fn want_digests(response: Response) -> Result<DigestReport, StcamError> {
    match response {
        Response::Digests(report) => Ok(report),
        Response::Error(msg) => Err(StcamError::Remote(msg)),
        other => Err(StcamError::Remote(format!(
            "expected digests, got {other:?}"
        ))),
    }
}

fn want_segment_digests(response: Response) -> Result<Vec<SegmentDigestEntry>, StcamError> {
    match response {
        Response::SegmentDigests(digests) => Ok(digests),
        Response::Error(msg) => Err(StcamError::Remote(msg)),
        other => Err(StcamError::Remote(format!(
            "expected segment digests, got {other:?}"
        ))),
    }
}

fn want_segments(
    response: Response,
) -> Result<(Vec<stcam_codec::SegmentFrame>, Vec<Observation>), StcamError> {
    match response {
        Response::Segments { frames, head } => Ok((frames, head)),
        Response::Error(msg) => Err(StcamError::Remote(msg)),
        other => Err(StcamError::Remote(format!(
            "expected segments, got {other:?}"
        ))),
    }
}

/// Every alive worker, in id order.
fn all_alive(alive: &HashSet<NodeId>) -> Vec<NodeId> {
    let mut v: Vec<NodeId> = alive.iter().copied().collect();
    v.sort();
    v
}

/// The alive owners of cells overlapping `region`.
fn region_targets(partition: &PartitionMap, alive: &HashSet<NodeId>, region: BBox) -> Vec<NodeId> {
    partition
        .workers_for_region(region)
        .into_iter()
        .filter(|w| alive.contains(w))
        .collect()
}

/// Sorts by distance from `at` (ties broken by id for determinism).
/// Uses `total_cmp`, so NaN distances (degenerate positions) order
/// deterministically instead of poisoning the comparator.
pub(crate) fn sort_knn(observations: &mut [Observation], at: Point) {
    observations.sort_by(|a, b| {
        let da = at.distance_sq(a.position);
        let db = at.distance_sq(b.position);
        da.total_cmp(&db).then(a.id.cmp(&b.id))
    });
}

// ----------------------------------------------------------------------
// The operations
// ----------------------------------------------------------------------

/// Ingest barrier: a Ping round-trip to every alive worker. Per-link
/// FIFO guarantees all previously sent ingest traffic drained first; the
/// barrier survives retries because a retried ping is sent even later.
#[derive(Debug, Clone, Copy)]
pub struct FlushOp;

impl DistributedOp for FlushOp {
    type Partial = ();
    type Output = ();
    fn name(&self) -> &'static str {
        "flush"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, _partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        all_alive(alive)
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Ping
    }
    fn decode(&self, response: Response) -> Result<(), StcamError> {
        want_ack(response)
    }
    fn merge(self, _partials: Vec<(NodeId, ())>) {}
}

/// Liveness probe: a Ping whose timeout *is* the failure signal, so it
/// carries its own policy key ("probe", single attempt by default) and
/// is consumed through [`Executor::run`] rather than `execute`.
/// Idempotent (a ping has no effect), so deployments running over lossy
/// links can install a multi-attempt "probe" policy to keep single lost
/// datagrams from masquerading as worker deaths.
#[derive(Debug, Clone, Copy)]
pub struct ProbeOp;

impl DistributedOp for ProbeOp {
    type Partial = ();
    type Output = ();
    fn name(&self) -> &'static str {
        "probe"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, _partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        all_alive(alive)
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Ping
    }
    fn decode(&self, response: Response) -> Result<(), StcamError> {
        want_ack(response)
    }
    fn merge(self, _partials: Vec<(NodeId, ())>) {}
}

/// Spatio-temporal range query over the shards overlapping `region`.
#[derive(Debug, Clone, Copy)]
pub struct RangeOp {
    /// Spatial predicate.
    pub region: BBox,
    /// Temporal predicate.
    pub window: TimeInterval,
}

impl DistributedOp for RangeOp {
    type Partial = Vec<Observation>;
    type Output = Vec<Observation>;
    fn name(&self) -> &'static str {
        "range"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn replica_readable(&self) -> bool {
        true
    }
    fn targets(&self, partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        region_targets(partition, alive, self.region)
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Range {
            region: self.region,
            window: self.window,
        }
    }
    fn decode(&self, response: Response) -> Result<Vec<Observation>, StcamError> {
        want_observations(response)
    }
    fn merge(self, partials: Vec<(NodeId, Vec<Observation>)>) -> Vec<Observation> {
        let mut merged: Vec<Observation> = partials.into_iter().flat_map(|(_, obs)| obs).collect();
        merged.sort_by_key(|o| o.id);
        merged
    }
}

/// [`RangeOp`] with an entity-class filter pushed down to the workers.
#[derive(Debug, Clone, Copy)]
pub struct RangeFilteredOp {
    /// Spatial predicate.
    pub region: BBox,
    /// Temporal predicate.
    pub window: TimeInterval,
    /// Required class, as `EntityClass::as_u8`.
    pub class: u8,
}

impl DistributedOp for RangeFilteredOp {
    type Partial = Vec<Observation>;
    type Output = Vec<Observation>;
    fn name(&self) -> &'static str {
        "range_filtered"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn replica_readable(&self) -> bool {
        true
    }
    fn targets(&self, partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        region_targets(partition, alive, self.region)
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::RangeFiltered {
            region: self.region,
            window: self.window,
            class: self.class,
        }
    }
    fn decode(&self, response: Response) -> Result<Vec<Observation>, StcamError> {
        want_observations(response)
    }
    fn merge(self, partials: Vec<(NodeId, Vec<Observation>)>) -> Vec<Observation> {
        let mut merged: Vec<Observation> = partials.into_iter().flat_map(|(_, obs)| obs).collect();
        merged.sort_by_key(|o| o.id);
        merged
    }
}

/// Phase one of the pruned kNN: ask only the owner of the query point's
/// cell; its k-th distance bounds phase two.
#[derive(Debug, Clone, Copy)]
pub struct KnnPhase1Op {
    /// The (alive) owner of the query point's cell.
    pub owner: NodeId,
    /// Query point.
    pub at: Point,
    /// Temporal predicate.
    pub window: TimeInterval,
    /// Result size.
    pub k: usize,
}

impl DistributedOp for KnnPhase1Op {
    type Partial = Vec<Observation>;
    type Output = Vec<Observation>;
    fn name(&self) -> &'static str {
        "knn_phase1"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn replica_readable(&self) -> bool {
        true
    }
    fn subset_on_loss(&self) -> bool {
        false
    }
    fn targets(&self, _partition: &PartitionMap, _alive: &HashSet<NodeId>) -> Vec<NodeId> {
        vec![self.owner]
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Knn {
            at: self.at,
            window: self.window,
            k: self.k as u32,
            max_distance: None,
        }
    }
    fn decode(&self, response: Response) -> Result<Vec<Observation>, StcamError> {
        want_observations(response)
    }
    fn merge(self, partials: Vec<(NodeId, Vec<Observation>)>) -> Vec<Observation> {
        let mut merged: Vec<Observation> = partials.into_iter().flat_map(|(_, obs)| obs).collect();
        sort_knn(&mut merged, self.at);
        merged.truncate(self.k);
        merged
    }
}

/// Phase two of the pruned kNN: scatter to the other shards intersecting
/// the bounding disk (or all others when phase one under-filled), then
/// fold the phase-one seed into the final top-k.
#[derive(Debug, Clone)]
pub struct KnnPhase2Op {
    /// Query point.
    pub at: Point,
    /// Temporal predicate.
    pub window: TimeInterval,
    /// Result size.
    pub k: usize,
    /// Prune radius from phase one (None = no bound established).
    pub bound: Option<f64>,
    /// The phase-one worker, excluded from the scatter.
    pub exclude: NodeId,
    /// Phase-one results, folded into the merge.
    pub seed: Vec<Observation>,
}

impl DistributedOp for KnnPhase2Op {
    type Partial = Vec<Observation>;
    type Output = Vec<Observation>;
    fn name(&self) -> &'static str {
        "knn_phase2"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn replica_readable(&self) -> bool {
        true
    }
    fn subset_on_loss(&self) -> bool {
        false
    }
    fn targets(&self, partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        let candidates = match self.bound {
            Some(radius) => partition.workers_for_region(BBox::around(self.at, radius)),
            None => all_alive(alive),
        };
        candidates
            .into_iter()
            .filter(|w| *w != self.exclude && alive.contains(w))
            .collect()
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Knn {
            at: self.at,
            window: self.window,
            k: self.k as u32,
            max_distance: self.bound,
        }
    }
    fn decode(&self, response: Response) -> Result<Vec<Observation>, StcamError> {
        want_observations(response)
    }
    fn merge(self, partials: Vec<(NodeId, Vec<Observation>)>) -> Vec<Observation> {
        let mut merged = self.seed;
        merged.extend(partials.into_iter().flat_map(|(_, obs)| obs));
        sort_knn(&mut merged, self.at);
        merged.truncate(self.k);
        merged
    }
}

/// The naive kNN baseline: broadcast to every alive worker, no bound.
#[derive(Debug, Clone, Copy)]
pub struct KnnBroadcastOp {
    /// Query point.
    pub at: Point,
    /// Temporal predicate.
    pub window: TimeInterval,
    /// Result size.
    pub k: usize,
}

impl DistributedOp for KnnBroadcastOp {
    type Partial = Vec<Observation>;
    type Output = Vec<Observation>;
    fn name(&self) -> &'static str {
        "knn_broadcast"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn replica_readable(&self) -> bool {
        true
    }
    fn subset_on_loss(&self) -> bool {
        false
    }
    fn targets(&self, _partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        all_alive(alive)
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Knn {
            at: self.at,
            window: self.window,
            k: self.k as u32,
            max_distance: None,
        }
    }
    fn decode(&self, response: Response) -> Result<Vec<Observation>, StcamError> {
        want_observations(response)
    }
    fn merge(self, partials: Vec<(NodeId, Vec<Observation>)>) -> Vec<Observation> {
        let mut merged: Vec<Observation> = partials.into_iter().flat_map(|(_, obs)| obs).collect();
        sort_knn(&mut merged, self.at);
        merged.truncate(self.k);
        merged
    }
}

/// Heat-map aggregate with worker-side partial aggregation: each shard
/// reduces to a dense counts vector, the merge sums them.
#[derive(Debug, Clone, Copy)]
pub struct HeatmapOp {
    /// Aggregation buckets.
    pub buckets: GridSpecMsg,
    /// Temporal predicate.
    pub window: TimeInterval,
}

impl HeatmapOp {
    fn cell_count(&self) -> usize {
        self.buckets.cols as usize * self.buckets.rows as usize
    }
}

impl DistributedOp for HeatmapOp {
    type Partial = Vec<u64>;
    type Output = Vec<u64>;
    fn name(&self) -> &'static str {
        "heatmap"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn replica_readable(&self) -> bool {
        true
    }
    fn targets(&self, partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        region_targets(partition, alive, self.buckets.to_grid().extent())
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Heatmap {
            buckets: self.buckets,
            window: self.window,
        }
    }
    fn decode(&self, response: Response) -> Result<Vec<u64>, StcamError> {
        let counts = want_counts(response)?;
        if counts.len() != self.cell_count() {
            return Err(StcamError::Remote("bucket count mismatch".into()));
        }
        Ok(counts)
    }
    fn merge(self, partials: Vec<(NodeId, Vec<u64>)>) -> Vec<u64> {
        let mut total = vec![0u64; self.cell_count()];
        for (_, counts) in partials {
            for (t, c) in total.iter_mut().zip(counts) {
                *t += c;
            }
        }
        total
    }
}

/// The `k` densest buckets of a heat-map grid, computed from *sparse*
/// per-shard partials: workers report only occupied buckets, the merge
/// sums and ranks. Ties rank by bucket index for determinism.
#[derive(Debug, Clone, Copy)]
pub struct TopCellsOp {
    /// Aggregation buckets.
    pub buckets: GridSpecMsg,
    /// Temporal predicate.
    pub window: TimeInterval,
    /// Number of cells to keep.
    pub k: usize,
}

impl DistributedOp for TopCellsOp {
    type Partial = Vec<(u32, u64)>;
    type Output = Vec<(CellId, u64)>;
    fn name(&self) -> &'static str {
        "top_cells"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn replica_readable(&self) -> bool {
        true
    }
    fn subset_on_loss(&self) -> bool {
        false
    }
    fn targets(&self, partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        region_targets(partition, alive, self.buckets.to_grid().extent())
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::TopCells {
            buckets: self.buckets,
            window: self.window,
        }
    }
    fn decode(&self, response: Response) -> Result<Vec<(u32, u64)>, StcamError> {
        let cells = want_cell_counts(response)?;
        let limit = self.buckets.cols as u64 * self.buckets.rows as u64;
        if cells.iter().any(|&(idx, _)| idx as u64 >= limit) {
            return Err(StcamError::Remote("bucket index out of range".into()));
        }
        Ok(cells)
    }
    fn merge(self, partials: Vec<(NodeId, Vec<(u32, u64)>)>) -> Vec<(CellId, u64)> {
        let mut totals: HashMap<u32, u64> = HashMap::new();
        for (_, cells) in partials {
            for (idx, count) in cells {
                *totals.entry(idx).or_insert(0) += count;
            }
        }
        let mut ranked: Vec<(u32, u64)> = totals.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(self.k);
        let cols = self.buckets.cols;
        ranked
            .into_iter()
            .map(|(idx, count)| (CellId::new(idx % cols, idx / cols), count))
            .collect()
    }
}

/// Cluster-wide retention sweep. Idempotent: evicting before the same
/// cutoff twice is a no-op.
#[derive(Debug, Clone, Copy)]
pub struct EvictOp {
    /// Observations strictly older than this are dropped.
    pub cutoff: Timestamp,
}

impl DistributedOp for EvictOp {
    type Partial = ();
    type Output = ();
    fn name(&self) -> &'static str {
        "evict"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, _partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        all_alive(alive)
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::EvictBefore(self.cutoff)
    }
    fn decode(&self, response: Response) -> Result<(), StcamError> {
        want_ack(response)
    }
    fn merge(self, _partials: Vec<(NodeId, ())>) {}
}

/// Statistics collection from every alive worker.
#[derive(Debug, Clone, Copy)]
pub struct StatsOp;

impl DistributedOp for StatsOp {
    type Partial = WorkerStatsMsg;
    type Output = Vec<(NodeId, WorkerStatsMsg)>;
    fn name(&self) -> &'static str {
        "stats"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, _partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        all_alive(alive)
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Stats
    }
    fn decode(&self, response: Response) -> Result<WorkerStatsMsg, StcamError> {
        want_stats(response)
    }
    fn merge(self, mut partials: Vec<(NodeId, WorkerStatsMsg)>) -> Vec<(NodeId, WorkerStatsMsg)> {
        partials.sort_by_key(|(w, _)| *w);
        partials
    }
}

/// Installs a standing query at the workers overlapping its region
/// (optionally restricted to one worker, for failover re-registration).
/// Idempotent: re-inserting the same registration is a no-op.
#[derive(Debug, Clone, Copy)]
pub struct RegisterContinuousOp {
    /// Query id.
    pub id: ContinuousQueryId,
    /// Match predicate.
    pub predicate: Predicate,
    /// Node notified on match.
    pub notify: NodeId,
    /// When set, register only at this worker (it must overlap).
    pub only: Option<NodeId>,
}

impl DistributedOp for RegisterContinuousOp {
    type Partial = ();
    type Output = ();
    fn name(&self) -> &'static str {
        "register_continuous"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        region_targets(partition, alive, self.predicate.region)
            .into_iter()
            .filter(|w| self.only.is_none_or(|o| o == *w))
            .collect()
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::RegisterContinuous {
            id: self.id,
            predicate: self.predicate,
            notify: self.notify,
        }
    }
    fn decode(&self, response: Response) -> Result<(), StcamError> {
        want_ack(response)
    }
    fn merge(self, _partials: Vec<(NodeId, ())>) {}
}

/// Removes a standing query everywhere. Idempotent.
#[derive(Debug, Clone, Copy)]
pub struct UnregisterContinuousOp {
    /// Query id.
    pub id: ContinuousQueryId,
}

impl DistributedOp for UnregisterContinuousOp {
    type Partial = ();
    type Output = ();
    fn name(&self) -> &'static str {
        "unregister_continuous"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, _partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        all_alive(alive)
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::UnregisterContinuous(self.id)
    }
    fn decode(&self, response: Response) -> Result<(), StcamError> {
        want_ack(response)
    }
    fn merge(self, _partials: Vec<(NodeId, ())>) {}
}

/// Shard migration, extract side: remove and return `region`'s contents
/// from one worker. **Not** idempotent — a retried extract after a lost
/// reply would discard the first extraction's data.
#[derive(Debug, Clone, Copy)]
pub struct ExtractRegionOp {
    /// The worker migrating data away.
    pub target: NodeId,
    /// The region being migrated.
    pub region: BBox,
}

impl DistributedOp for ExtractRegionOp {
    type Partial = Vec<Observation>;
    type Output = Vec<Observation>;
    fn name(&self) -> &'static str {
        "extract_region"
    }
    fn targets(&self, _partition: &PartitionMap, _alive: &HashSet<NodeId>) -> Vec<NodeId> {
        vec![self.target]
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::ExtractRegion {
            region: self.region,
        }
    }
    fn decode(&self, response: Response) -> Result<Vec<Observation>, StcamError> {
        want_observations(response)
    }
    fn merge(self, partials: Vec<(NodeId, Vec<Observation>)>) -> Vec<Observation> {
        partials.into_iter().flat_map(|(_, obs)| obs).collect()
    }
}

/// Shard migration, adopt side: hand a batch to its new owner. **Not**
/// idempotent — a retry after a lost reply would duplicate the batch.
#[derive(Debug, Clone)]
pub struct AdoptOp {
    /// The adopting worker.
    pub target: NodeId,
    /// The migrated observations.
    pub batch: Vec<Observation>,
}

impl DistributedOp for AdoptOp {
    type Partial = ();
    type Output = ();
    fn name(&self) -> &'static str {
        "adopt"
    }
    fn targets(&self, _partition: &PartitionMap, _alive: &HashSet<NodeId>) -> Vec<NodeId> {
        vec![self.target]
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Adopt(self.batch.clone())
    }
    fn decode(&self, response: Response) -> Result<(), StcamError> {
        want_ack(response)
    }
    fn merge(self, _partials: Vec<(NodeId, ())>) {}
}

/// Failover: tell a successor to absorb its replica log of `failed`.
/// Idempotent: promotion removes the log before absorbing it, and the
/// worker inserts through an id filter, so a retried promote after a
/// lost ack finds an empty log and is a no-op. Retrying matters — a
/// promote lost to the loss model would otherwise strand the replica
/// data outside the primary index until a second failover.
#[derive(Debug, Clone, Copy)]
pub struct PromoteOp {
    /// The successor absorbing the shard.
    pub target: NodeId,
    /// The failed primary.
    pub failed: NodeId,
}

impl DistributedOp for PromoteOp {
    type Partial = ();
    type Output = ();
    fn name(&self) -> &'static str {
        "promote"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, _partition: &PartitionMap, _alive: &HashSet<NodeId>) -> Vec<NodeId> {
        vec![self.target]
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Promote {
            failed: self.failed,
        }
    }
    fn decode(&self, response: Response) -> Result<(), StcamError> {
        want_ack(response)
    }
    fn merge(self, _partials: Vec<(NodeId, ())>) {}
}

/// Installs every worker's slice of the routing plan (epoch + owned
/// macro cells). Broadcast after each plan publication and pushed to
/// restarted workers so a stale node cannot keep acknowledging sequenced
/// ingest for cells it no longer owns. Idempotent: installing the same
/// epoch twice is a no-op, and workers ignore older epochs.
#[derive(Debug, Clone)]
pub struct RouteUpdateOp {
    /// The plan epoch being installed.
    pub epoch: u64,
    /// The macro grid the packed cell indices refer to.
    pub grid: GridSpecMsg,
    /// Per-worker owned cells, packed `row * cols + col`. Workers absent
    /// from the map receive an *empty* cell set — which is the point for
    /// failed-out nodes: an empty route makes them NACK every sequenced
    /// batch, steering stale senders to refresh.
    pub cells: HashMap<NodeId, Vec<u32>>,
    /// When set, send only to this worker (restart push).
    pub only: Option<NodeId>,
}

impl RouteUpdateOp {
    /// Builds the broadcast for `partition` at `epoch`.
    pub fn from_plan(epoch: u64, partition: &PartitionMap) -> Self {
        let cols = partition.grid().cols();
        let cells = partition
            .workers()
            .iter()
            .map(|&w| {
                let packed = partition
                    .cells_of(w)
                    .into_iter()
                    .map(|c| c.row * cols + c.col)
                    .collect();
                (w, packed)
            })
            .collect();
        RouteUpdateOp {
            epoch,
            grid: GridSpecMsg::from(*partition.grid()),
            cells,
            only: None,
        }
    }
}

impl DistributedOp for RouteUpdateOp {
    type Partial = ();
    type Output = ();
    fn name(&self) -> &'static str {
        "route_update"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, _partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        match self.only {
            Some(worker) => vec![worker],
            None => all_alive(alive),
        }
    }
    fn request(&self, to: NodeId) -> Request {
        Request::RouteUpdate {
            epoch: self.epoch,
            grid: self.grid,
            cells: self.cells.get(&to).cloned().unwrap_or_default(),
        }
    }
    fn decode(&self, response: Response) -> Result<(), StcamError> {
        want_ack(response)
    }
    fn merge(self, _partials: Vec<(NodeId, ())>) {}
}

/// Anti-entropy digest sweep: collect every worker's per-cell
/// count/checksum summaries (primary shard plus held replica logs).
/// Idempotent — digests are pure reads. The merge keeps each report tied
/// to its worker, because the repair planner compares copies by node.
#[derive(Debug, Clone, Copy)]
pub struct CellDigestOp {
    /// The macro grid to bucket by (the partition grid of the sweep).
    pub grid: GridSpecMsg,
    /// When set, sweep only this worker (spot checks).
    pub only: Option<NodeId>,
}

impl DistributedOp for CellDigestOp {
    type Partial = DigestReport;
    type Output = Vec<(NodeId, DigestReport)>;
    fn name(&self) -> &'static str {
        "cell_digest"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, _partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        match self.only {
            Some(worker) => vec![worker],
            None => all_alive(alive),
        }
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::CellDigest { grid: self.grid }
    }
    fn decode(&self, response: Response) -> Result<DigestReport, StcamError> {
        want_digests(response)
    }
    fn merge(self, mut partials: Vec<(NodeId, DigestReport)>) -> Vec<(NodeId, DigestReport)> {
        partials.sort_by_key(|(w, _)| *w);
        partials
    }
}

/// One chunk of a repair stream into `target`: overwrite (or append to)
/// the cell's copy held for `primary` — the replica log when `primary`
/// differs from the target, the primary shard itself when they are equal
/// (the rejoin/rebalance bulk-sync path). Idempotent: the first chunk
/// truncates before writing and every append passes the holder's id
/// filter, so a retransmitted chunk changes nothing.
#[derive(Debug, Clone)]
pub struct RepairOp {
    /// The worker whose copy is being repaired.
    pub target: NodeId,
    /// The primary the copy belongs to.
    pub primary: NodeId,
    /// The macro grid `cell` refers to.
    pub grid: GridSpecMsg,
    /// Packed macro-cell index being overwritten.
    pub cell: u32,
    /// Whether to drop the cell's current contents first (set on the
    /// first chunk of a stream, and on pure cleanups with no batch).
    pub truncate: bool,
    /// The observations of this chunk.
    pub batch: Vec<Observation>,
}

impl DistributedOp for RepairOp {
    type Partial = ();
    type Output = ();
    fn name(&self) -> &'static str {
        "repair"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, _partition: &PartitionMap, _alive: &HashSet<NodeId>) -> Vec<NodeId> {
        vec![self.target]
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Repair {
            primary: self.primary,
            grid: self.grid,
            cell: self.cell,
            truncate: self.truncate,
            batch: self.batch.clone(),
        }
    }
    fn decode(&self, response: Response) -> Result<(), StcamError> {
        want_ack(response)
    }
    fn merge(self, _partials: Vec<(NodeId, ())>) {}
}

/// Readmission handshake sent to a restarted worker: reset all local
/// state and install the epoch-stamped routing slice it will own once
/// the coordinator publishes the readmitting plan. Idempotent — resetting
/// an already-empty worker and reinstalling the same route are no-ops.
#[derive(Debug, Clone)]
pub struct RejoinOp {
    /// The rejoining worker.
    pub target: NodeId,
    /// The plan epoch the worker will re-enter under.
    pub epoch: u64,
    /// The macro grid the packed cells refer to.
    pub grid: GridSpecMsg,
    /// The cells the worker will own, packed `row * cols + col`.
    pub cells: Vec<u32>,
}

impl DistributedOp for RejoinOp {
    type Partial = ();
    type Output = ();
    fn name(&self) -> &'static str {
        "rejoin"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, _partition: &PartitionMap, _alive: &HashSet<NodeId>) -> Vec<NodeId> {
        vec![self.target]
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Rejoin {
            epoch: self.epoch,
            grid: self.grid,
            cells: self.cells.clone(),
        }
    }
    fn decode(&self, response: Response) -> Result<(), StcamError> {
        want_ack(response)
    }
    fn merge(self, _partials: Vec<(NodeId, ())>) {}
}

/// Collects one worker's sealed-segment digests — the compare step of
/// segment-granular bulk sync. Idempotent pure read.
#[derive(Debug, Clone, Copy)]
pub struct SegmentDigestOp {
    /// The worker whose archive is summarised.
    pub target: NodeId,
}

impl DistributedOp for SegmentDigestOp {
    type Partial = Vec<SegmentDigestEntry>;
    type Output = Vec<SegmentDigestEntry>;
    fn name(&self) -> &'static str {
        "segment_digest"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, _partition: &PartitionMap, _alive: &HashSet<NodeId>) -> Vec<NodeId> {
        vec![self.target]
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::SegmentDigest
    }
    fn decode(&self, response: Response) -> Result<Vec<SegmentDigestEntry>, StcamError> {
        want_segment_digests(response)
    }
    fn merge(self, partials: Vec<(NodeId, Vec<SegmentDigestEntry>)>) -> Vec<SegmentDigestEntry> {
        partials.into_iter().flat_map(|(_, d)| d).collect()
    }
}

/// Reads a region's contents from one worker as whole sealed segment
/// frames plus loose head rows, skipping segments the requester already
/// holds. Non-destructive and deterministic (retried exports produce
/// digest-identical frames), so the op is idempotent over lossy links.
#[derive(Debug, Clone)]
pub struct ExportSegmentsOp {
    /// The worker to export from.
    pub target: NodeId,
    /// The region whose contents move.
    pub region: BBox,
    /// Segment digests the destination already holds.
    pub skip: Vec<SegmentDigestEntry>,
}

impl DistributedOp for ExportSegmentsOp {
    type Partial = (Vec<stcam_codec::SegmentFrame>, Vec<Observation>);
    type Output = (Vec<stcam_codec::SegmentFrame>, Vec<Observation>);
    fn name(&self) -> &'static str {
        "export_segments"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, _partition: &PartitionMap, _alive: &HashSet<NodeId>) -> Vec<NodeId> {
        vec![self.target]
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::ExportSegments {
            region: self.region,
            skip: self.skip.clone(),
        }
    }
    fn decode(
        &self,
        response: Response,
    ) -> Result<(Vec<stcam_codec::SegmentFrame>, Vec<Observation>), StcamError> {
        want_segments(response)
    }
    fn merge(
        self,
        partials: Vec<(NodeId, (Vec<stcam_codec::SegmentFrame>, Vec<Observation>))>,
    ) -> (Vec<stcam_codec::SegmentFrame>, Vec<Observation>) {
        let mut frames = Vec::new();
        let mut head = Vec::new();
        for (_, (f, h)) in partials {
            frames.extend(f);
            head.extend(h);
        }
        (frames, head)
    }
}

/// Installs exported segments whole into one worker's archive tier, and
/// the loose head rows through deduplicated ingest. Idempotent: the
/// receiver drops frames whose digest it already holds and rows it has
/// already seen, so a retry after a lost ack changes nothing.
#[derive(Debug, Clone)]
pub struct InstallSegmentsOp {
    /// The worker receiving the segments.
    pub target: NodeId,
    /// Sealed segment frames to archive.
    pub frames: Vec<stcam_codec::SegmentFrame>,
    /// Loose mutable-head rows to ingest.
    pub head: Vec<Observation>,
}

impl DistributedOp for InstallSegmentsOp {
    type Partial = ();
    type Output = ();
    fn name(&self) -> &'static str {
        "install_segments"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, _partition: &PartitionMap, _alive: &HashSet<NodeId>) -> Vec<NodeId> {
        vec![self.target]
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::InstallSegments {
            frames: self.frames.clone(),
            head: self.head.clone(),
        }
    }
    fn decode(&self, response: Response) -> Result<(), StcamError> {
        want_ack(response)
    }
    fn merge(self, _partials: Vec<(NodeId, ())>) {}
}

/// Non-destructive read of a region's contents from one worker — the
/// copy side of repair and copy-then-cutover migration. Unlike
/// [`ExtractRegionOp`] the source keeps its data, so the op is idempotent
/// and safe to retry over lossy links; the stale source copy is truncated
/// later, only after the destination chain is covered.
#[derive(Debug, Clone, Copy)]
pub struct CopyRegionOp {
    /// The worker to read from.
    pub target: NodeId,
    /// The region to copy.
    pub region: BBox,
}

impl DistributedOp for CopyRegionOp {
    type Partial = Vec<Observation>;
    type Output = Vec<Observation>;
    fn name(&self) -> &'static str {
        "copy_region"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, _partition: &PartitionMap, _alive: &HashSet<NodeId>) -> Vec<NodeId> {
        vec![self.target]
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Range {
            region: self.region,
            window: TimeInterval::ALL,
        }
    }
    fn decode(&self, response: Response) -> Result<Vec<Observation>, StcamError> {
        want_observations(response)
    }
    fn merge(self, partials: Vec<(NodeId, Vec<Observation>)>) -> Vec<Observation> {
        partials.into_iter().flat_map(|(_, obs)| obs).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcam_camnet::{CameraId, ObservationId, Signature};
    use stcam_net::{Fabric, LinkModel};
    use stcam_world::{EntityClass, EntityId};

    fn obs(seq: u64, x: f64) -> Observation {
        Observation {
            id: ObservationId::compose(CameraId(0), seq),
            camera: CameraId(0),
            time: Timestamp::ZERO,
            position: Point::new(x, 0.0),
            class: EntityClass::Car,
            signature: Signature::latent_for_entity(seq),
            truth: Some(EntityId(seq)),
        }
    }

    fn window() -> TimeInterval {
        TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(100))
    }

    fn one_worker_world() -> (PartitionMap, HashSet<NodeId>) {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let partition = PartitionMap::uniform(extent, 250.0, vec![NodeId(1)]);
        let alive: HashSet<NodeId> = [NodeId(1)].into_iter().collect();
        (partition, alive)
    }

    #[test]
    fn policy_overrides_take_effect() {
        let fabric = Fabric::new(LinkModel::instant());
        let exec = Executor::new(
            fabric.register(NodeId(0)),
            OpPolicy::new(StdDuration::from_secs(5)),
        );
        assert_eq!(exec.policy_for("range").max_attempts, 3);
        exec.set_policy("range", OpPolicy::no_retry(StdDuration::from_millis(50)));
        assert_eq!(exec.policy_for("range").max_attempts, 1);
        assert_eq!(
            exec.policy_for("range").timeout,
            StdDuration::from_millis(50)
        );
        // Other ops keep the default.
        assert_eq!(exec.policy_for("heatmap").max_attempts, 3);
    }

    #[test]
    fn op_stats_since_subtracts() {
        let a = OpStats {
            invocations: 2,
            sub_queries: 8,
            bytes_sent: 100,
            ..Default::default()
        };
        let b = OpStats {
            invocations: 5,
            sub_queries: 20,
            bytes_sent: 450,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.invocations, 3);
        assert_eq!(d.sub_queries, 12);
        assert_eq!(d.bytes_sent, 350);
    }

    #[test]
    fn decoders_map_remote_errors() {
        let range = RangeOp {
            region: BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            window: window(),
        };
        assert!(matches!(
            range.decode(Response::Error("boom".into())),
            Err(StcamError::Remote(_))
        ));
        assert!(matches!(
            range.decode(Response::Ack),
            Err(StcamError::Remote(_))
        ));
        assert!(matches!(FlushOp.decode(Response::Ack), Ok(())));
        let heat = HeatmapOp {
            buckets: GridSpecMsg {
                origin: Point::new(0.0, 0.0),
                cell_size: 10.0,
                cols: 2,
                rows: 2,
            },
            window: window(),
        };
        // Wrong-length counts vector is an application error, not a panic.
        assert!(matches!(
            heat.decode(Response::Counts(vec![1, 2, 3])),
            Err(StcamError::Remote(_))
        ));
        assert_eq!(
            heat.decode(Response::Counts(vec![1, 2, 3, 4])).unwrap(),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn sort_knn_orders_by_distance_then_id_and_survives_nan() {
        let mut v = vec![obs(2, 5.0), obs(0, 10.0), obs(1, 5.0)];
        sort_knn(&mut v, Point::new(0.0, 0.0));
        let seqs: Vec<u64> = v.iter().map(|o| o.id.seq()).collect();
        assert_eq!(seqs, vec![1, 2, 0]);
        // A NaN position no longer destabilises the order of the rest.
        let mut w = vec![obs(3, f64::NAN), obs(4, 1.0), obs(5, 2.0)];
        sort_knn(&mut w, Point::new(0.0, 0.0));
        assert_eq!(w[0].id.seq(), 4);
        assert_eq!(w[1].id.seq(), 5);
        assert_eq!(w[2].id.seq(), 3); // NaN distance sorts last under total_cmp
    }

    #[test]
    fn top_cells_merge_ranks_by_count_then_index() {
        let op = TopCellsOp {
            buckets: GridSpecMsg {
                origin: Point::new(0.0, 0.0),
                cell_size: 10.0,
                cols: 4,
                rows: 4,
            },
            window: window(),
            k: 3,
        };
        let partials = vec![
            (NodeId(1), vec![(0u32, 5u64), (5, 2)]),
            (NodeId(2), vec![(5, 2), (9, 4), (1, 4)]),
        ];
        let top = op.merge(partials);
        // cell 0 → 5; cells 1, 5, 9 → 4 each (tie broken by index).
        assert_eq!(top.len(), 3);
        assert_eq!(top[0], (CellId::new(0, 0), 5));
        assert_eq!(top[1], (CellId::new(1, 0), 4));
        assert_eq!(top[2], (CellId::new(1, 1), 4)); // index 5 = col 1, row 1
    }

    #[test]
    fn idempotent_read_is_retried_after_a_lost_request() {
        // A worker that swallows the first request it sees and serves
        // every later one: the seed coordinator would surface a timeout;
        // the executor retries and succeeds, with the retry on record.
        let fabric = Fabric::new(LinkModel::instant());
        let worker_ep = fabric.register(NodeId(1));
        let exec = Executor::new(
            fabric.register(NodeId(0)),
            OpPolicy {
                timeout: StdDuration::from_millis(100),
                max_attempts: 3,
                backoff: StdDuration::from_millis(1),
            },
        );
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_worker = std::sync::Arc::clone(&stop);
        let flaky = std::thread::spawn(move || {
            let mut dropped = false;
            while !stop_worker.load(Ordering::Relaxed) {
                let Some(env) = worker_ep.recv_timeout(StdDuration::from_millis(10)) else {
                    continue;
                };
                if !dropped {
                    dropped = true; // swallow the first attempt
                    continue;
                }
                let _ = worker_ep.reply(
                    &env,
                    encode_to_vec(&Response::Observations(vec![obs(7, 1.0)])),
                );
            }
        });
        let (partition, alive) = one_worker_world();
        let result = exec.execute(
            RangeOp {
                region: BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)),
                window: window(),
            },
            &partition,
            &alive,
        );
        stop.store(true, Ordering::Relaxed);
        flaky.join().unwrap();
        let hits = result.expect("retry should have recovered the query");
        assert_eq!(hits.len(), 1);
        let stats = exec.stats_for("range");
        assert_eq!(stats.invocations, 1);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.sub_queries, 2); // original + retry
        assert_eq!(stats.failures, 0);
        assert!(stats.bytes_sent > 0);
        assert!(stats.bytes_received > 0);
    }

    #[test]
    fn non_idempotent_op_is_never_retried() {
        // Nobody serves NodeId(1): every attempt times out. Adopt must
        // fail on the first timeout without retrying (a retry could
        // duplicate the batch).
        let fabric = Fabric::new(LinkModel::instant());
        let _worker_ep = fabric.register(NodeId(1));
        let exec = Executor::new(
            fabric.register(NodeId(0)),
            OpPolicy {
                timeout: StdDuration::from_millis(50),
                max_attempts: 3,
                backoff: StdDuration::ZERO,
            },
        );
        let (partition, alive) = one_worker_world();
        let result = exec.execute(
            AdoptOp {
                target: NodeId(1),
                batch: vec![obs(0, 1.0)],
            },
            &partition,
            &alive,
        );
        assert!(matches!(result, Err(StcamError::Net(NetError::Timeout))));
        let stats = exec.stats_for("adopt");
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.sub_queries, 1);
        assert_eq!(stats.failures, 1);
    }

    #[test]
    fn completeness_accounting() {
        let full = Completeness {
            shards_total: 4,
            shards_from_primary: 3,
            shards_from_replica: 1,
            replicas_used: vec![(NodeId(2), NodeId(3))],
            subset: true,
            ..Completeness::default()
        };
        assert!(full.is_full());
        assert_eq!(full.fraction(), 1.0);
        let mut degraded = Completeness {
            shards_total: 4,
            shards_from_primary: 3,
            missing: vec![NodeId(2)],
            subset: true,
            ..Completeness::default()
        };
        assert!(!degraded.is_full());
        assert_eq!(degraded.fraction(), 0.75);
        // Absorbing a second phase sums counters, dedups missing, and
        // ANDs the subset guarantee.
        degraded.absorb(Completeness {
            shards_total: 2,
            shards_from_primary: 1,
            missing: vec![NodeId(2), NodeId(5)],
            retries: 1,
            subset: false,
            ..Completeness::default()
        });
        assert_eq!(degraded.shards_total, 6);
        assert_eq!(degraded.missing, vec![NodeId(2), NodeId(5)]);
        assert_eq!(degraded.retries, 1);
        assert!(!degraded.subset);
        // Nothing to cover counts as complete.
        assert_eq!(Completeness::default().fraction(), 1.0);
        assert!(Completeness::default().is_full());
    }

    #[test]
    fn op_degradation_flags() {
        let region = BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let grid = GridSpecMsg {
            origin: Point::new(0.0, 0.0),
            cell_size: 1.0,
            cols: 1,
            rows: 1,
        };
        // Unions and per-bucket sums lose rows monotonically.
        let range = RangeOp {
            region,
            window: window(),
        };
        assert!(range.replica_readable() && range.subset_on_loss());
        let heat = HeatmapOp {
            buckets: grid,
            window: window(),
        };
        assert!(heat.replica_readable() && heat.subset_on_loss());
        // Top-k shapes can promote wrong items when a shard is lost.
        let knn = KnnBroadcastOp {
            at: Point::ORIGIN,
            window: window(),
            k: 3,
        };
        assert!(knn.replica_readable() && !knn.subset_on_loss());
        let top = TopCellsOp {
            buckets: grid,
            window: window(),
            k: 3,
        };
        assert!(top.replica_readable() && !top.subset_on_loss());
        // Writes and probes never read replicas.
        assert!(!FlushOp.replica_readable());
        assert!(!ProbeOp.replica_readable());
        let adopt = AdoptOp {
            target: NodeId(1),
            batch: vec![],
        };
        assert!(!adopt.replica_readable());
    }

    #[test]
    fn degraded_execute_reports_a_dead_unreplicated_shard_as_missing() {
        // One worker, nobody serving it, replication 0: the degraded
        // path must answer with an empty value and a truthful account.
        let fabric = Fabric::new(LinkModel::instant());
        let _worker_ep = fabric.register(NodeId(1));
        let exec = Executor::new(
            fabric.register(NodeId(0)),
            OpPolicy::no_retry(StdDuration::from_millis(50)),
        );
        let (partition, alive) = one_worker_world();
        let d = exec.execute_degraded(
            RangeOp {
                region: BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)),
                window: window(),
            },
            &partition,
            &alive,
        );
        assert!(d.value.is_empty());
        assert_eq!(d.completeness.shards_total, 1);
        assert_eq!(d.completeness.missing, vec![NodeId(1)]);
        assert!(!d.completeness.is_full());
        assert_eq!(d.completeness.fraction(), 0.0);
        assert!(d.completeness.subset, "a lost range shard still subsets");
        // The failed call also raised suspicion on the silent worker.
        assert!(exec.health().is_suspect(NodeId(1)));
        let stats = exec.stats_for("range");
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.failovers, 0, "no replicas configured");
    }

    #[test]
    fn empty_target_set_yields_empty_output_without_traffic() {
        let fabric = Fabric::new(LinkModel::instant());
        let exec = Executor::new(
            fabric.register(NodeId(0)),
            OpPolicy::new(StdDuration::from_secs(1)),
        );
        let (partition, _) = one_worker_world();
        let alive = HashSet::new(); // nobody alive
        let hits = exec
            .execute(
                RangeOp {
                    region: BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
                    window: window(),
                },
                &partition,
                &alive,
            )
            .unwrap();
        assert!(hits.is_empty());
        let stats = exec.stats_for("range");
        assert_eq!(stats.invocations, 1);
        assert_eq!(stats.sub_queries, 0);
        assert_eq!(stats.bytes_sent, 0);
    }
}
