//! The typed scatter/gather execution layer.
//!
//! Every distributed operation the coordinator performs — queries,
//! barriers, migrations, probes — is one implementation of
//! [`DistributedOp`]: a small value that knows which workers to contact,
//! what [`Request`] to send each one, how to check/decode each worker's
//! [`Response`] into a typed partial result, and how to merge the
//! partials into the operation's output. The [`Executor`] owns everything
//! those implementations share: parallel fan-out over scoped threads,
//! per-operation timeout/retry policy ([`OpPolicy`]), and per-operation
//! telemetry ([`OpStats`]) with wire-byte accounting from the fabric's
//! counters.
//!
//! # Retry semantics
//!
//! RPCs are at-most-once: a timed-out sub-query may or may not have been
//! executed by the worker. The executor therefore retries **only**
//! operations that declare themselves idempotent
//! ([`DistributedOp::idempotent`]) — pure reads plus writes that are safe
//! to apply twice (flush pings, eviction, continuous-query registration).
//! Migration steps (`extract`/`adopt`/`promote`) never retry: a repeated
//! extract after a lost reply would discard data. Retries are
//! deterministic: a fixed attempt budget with linear backoff, counted in
//! [`OpStats::retries`].
//!
//! # Adding a new operation
//!
//! 1. Add the `Request`/`Response` message pair in
//!    [`protocol`](crate::protocol) and a worker handler row in the
//!    worker's dispatch table.
//! 2. Implement [`DistributedOp`] (targets / request / decode / merge).
//! 3. Call [`Executor::execute`] from a thin coordinator wrapper.
//!
//! The executor itself needs no changes — see [`TopCellsOp`] for a
//! complete example.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration as StdDuration, Instant};

use parking_lot::Mutex;
use stcam_camnet::Observation;
use stcam_codec::{decode_from_slice, encode_to_vec};
use stcam_geo::{BBox, CellId, Point, TimeInterval, Timestamp};
use stcam_net::{Endpoint, NetError, NodeId};

use crate::continuous::{ContinuousQueryId, Predicate};
use crate::error::StcamError;
use crate::partition::PartitionMap;
use crate::protocol::{GridSpecMsg, Request, Response, WorkerStatsMsg};

// ----------------------------------------------------------------------
// Policy and telemetry
// ----------------------------------------------------------------------

/// Timeout/retry policy of one operation class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpPolicy {
    /// Per-sub-query RPC timeout.
    pub timeout: StdDuration,
    /// Total attempts per sub-query (1 = no retry). Only idempotent
    /// operations ever use more than one.
    pub max_attempts: u32,
    /// Base backoff between attempts; attempt `n` sleeps `n × backoff`
    /// (linear, deterministic).
    pub backoff: StdDuration,
}

impl OpPolicy {
    /// The standard policy: the caller's total timeout budget split
    /// across up to three attempts with 10 ms linear backoff. Splitting
    /// (rather than multiplying) keeps the worst-case latency against a
    /// genuinely dead worker at ≈ `timeout`, the same bound a
    /// non-retrying caller would see, while still recovering from
    /// transiently lost messages well before that bound.
    pub fn new(timeout: StdDuration) -> Self {
        OpPolicy {
            timeout: timeout / 3,
            max_attempts: 3,
            backoff: StdDuration::from_millis(10),
        }
    }

    /// A single-attempt policy (used for liveness probes, where a timeout
    /// *is* the signal).
    pub fn no_retry(timeout: StdDuration) -> Self {
        OpPolicy {
            timeout,
            max_attempts: 1,
            backoff: StdDuration::ZERO,
        }
    }
}

/// Cumulative telemetry of one operation class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpStats {
    /// Times the operation was invoked.
    pub invocations: u64,
    /// Sub-query attempts issued (fan-out × invocations, plus retries).
    pub sub_queries: u64,
    /// Sub-query attempts that were deterministic retries after a
    /// timeout.
    pub retries: u64,
    /// Sub-queries whose final attempt failed.
    pub failures: u64,
    /// Wire bytes sent by the coordinator for this operation.
    pub bytes_sent: u64,
    /// Wire bytes received by the coordinator for this operation.
    pub bytes_received: u64,
    /// Wall-clock microseconds spent in the scatter/gather phase
    /// (issuing sub-queries and collecting responses).
    pub scatter_micros: u64,
    /// Wall-clock microseconds spent merging partials into the output.
    pub merge_micros: u64,
}

impl OpStats {
    /// Difference against an earlier snapshot: activity that occurred in
    /// between (saturating).
    pub fn since(&self, earlier: &OpStats) -> OpStats {
        OpStats {
            invocations: self.invocations.saturating_sub(earlier.invocations),
            sub_queries: self.sub_queries.saturating_sub(earlier.sub_queries),
            retries: self.retries.saturating_sub(earlier.retries),
            failures: self.failures.saturating_sub(earlier.failures),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            bytes_received: self.bytes_received.saturating_sub(earlier.bytes_received),
            scatter_micros: self.scatter_micros.saturating_sub(earlier.scatter_micros),
            merge_micros: self.merge_micros.saturating_sub(earlier.merge_micros),
        }
    }
}

// ----------------------------------------------------------------------
// The operation abstraction
// ----------------------------------------------------------------------

/// One distributed operation: scatter targets, per-worker request,
/// response decoding, and partial-result merging.
///
/// Implementations are plain values consumed by [`Executor::execute`]
/// (or borrowed by [`Executor::run`] when the caller wants the raw
/// per-worker results, e.g. liveness probing).
pub trait DistributedOp: Sync {
    /// What one worker contributes.
    type Partial: Send;
    /// What the whole operation yields.
    type Output;

    /// Stable operation name — the key for policy overrides and
    /// [`OpStats`] aggregation.
    fn name(&self) -> &'static str;

    /// Whether a sub-query may safely be retried after a timeout (the
    /// worker may or may not have executed the lost attempt).
    fn idempotent(&self) -> bool {
        false
    }

    /// The workers this operation must contact, given the current
    /// partition map and alive set.
    fn targets(&self, partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId>;

    /// The request to send worker `to`.
    fn request(&self, to: NodeId) -> Request;

    /// Checks and converts one worker's response into a partial result.
    fn decode(&self, response: Response) -> Result<Self::Partial, StcamError>;

    /// Merges the per-worker partials (in target order) into the output.
    fn merge(self, partials: Vec<(NodeId, Self::Partial)>) -> Self::Output;
}

// ----------------------------------------------------------------------
// The executor
// ----------------------------------------------------------------------

/// Owns scatter/gather fan-out, retry policy, and per-op telemetry for
/// every [`DistributedOp`].
#[derive(Debug)]
pub struct Executor {
    endpoint: Endpoint,
    default_policy: OpPolicy,
    overrides: Mutex<HashMap<&'static str, OpPolicy>>,
    stats: Mutex<BTreeMap<&'static str, OpStats>>,
}

impl Executor {
    /// Creates an executor speaking through `endpoint` with
    /// `default_policy` for operations without an override.
    pub fn new(endpoint: Endpoint, default_policy: OpPolicy) -> Self {
        Executor {
            endpoint,
            default_policy,
            overrides: Mutex::new(HashMap::new()),
            stats: Mutex::new(BTreeMap::new()),
        }
    }

    /// The underlying fabric endpoint (also used for one-way traffic
    /// such as ingest routing and notification polling).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Installs a policy override for the named operation.
    pub fn set_policy(&self, op: &'static str, policy: OpPolicy) {
        self.overrides.lock().insert(op, policy);
    }

    /// The effective policy of the named operation.
    pub fn policy_for(&self, op: &str) -> OpPolicy {
        self.overrides
            .lock()
            .get(op)
            .copied()
            .unwrap_or(self.default_policy)
    }

    /// A snapshot of per-op telemetry, sorted by operation name.
    pub fn op_stats(&self) -> Vec<(&'static str, OpStats)> {
        self.stats
            .lock()
            .iter()
            .map(|(&name, &s)| (name, s))
            .collect()
    }

    /// Telemetry of one operation (zeros when never invoked).
    pub fn stats_for(&self, op: &str) -> OpStats {
        self.stats.lock().get(op).copied().unwrap_or_default()
    }

    /// Runs the full operation: scatter, gather, merge. Any sub-query
    /// failure (after retries) fails the whole operation.
    ///
    /// # Errors
    ///
    /// Propagates the first failed sub-query's error.
    pub fn execute<O: DistributedOp>(
        &self,
        op: O,
        partition: &PartitionMap,
        alive: &HashSet<NodeId>,
    ) -> Result<O::Output, StcamError> {
        let name = op.name();
        let results = self.run(&op, partition, alive);
        let mut partials = Vec::with_capacity(results.len());
        for (worker, result) in results {
            partials.push((worker, result?));
        }
        let started = Instant::now();
        let output = op.merge(partials);
        let merge_micros = started.elapsed().as_micros() as u64;
        self.stats.lock().entry(name).or_default().merge_micros += merge_micros;
        Ok(output)
    }

    /// Scatters the operation and returns the raw per-worker outcomes in
    /// target order, without failing on individual errors and without
    /// merging. Used when failures are data (liveness probes).
    pub fn run<O: DistributedOp>(
        &self,
        op: &O,
        partition: &PartitionMap,
        alive: &HashSet<NodeId>,
    ) -> Vec<(NodeId, Result<O::Partial, StcamError>)> {
        let targets = op.targets(partition, alive);
        let policy = self.policy_for(op.name());
        let net_before = self.endpoint.stats();
        let retries = AtomicU64::new(0);
        let started = Instant::now();
        let results: Vec<(NodeId, Result<O::Partial, StcamError>)> = if targets.is_empty() {
            Vec::new()
        } else if targets.len() == 1 {
            // Single-target fast path: no thread spawn.
            let worker = targets[0];
            vec![(worker, self.attempt(op, worker, &policy, &retries))]
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = targets
                    .iter()
                    .map(|&worker| {
                        let policy = &policy;
                        let retries = &retries;
                        scope.spawn(move || (worker, self.attempt(op, worker, policy, retries)))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("scatter thread panicked"))
                    .collect()
            })
        };
        let scatter_micros = started.elapsed().as_micros() as u64;
        let net_delta = self.endpoint.stats().since(&net_before);
        let retries = retries.into_inner();
        let failures = results.iter().filter(|(_, r)| r.is_err()).count() as u64;
        let mut stats = self.stats.lock();
        let entry = stats.entry(op.name()).or_default();
        entry.invocations += 1;
        entry.sub_queries += targets.len() as u64 + retries;
        entry.retries += retries;
        entry.failures += failures;
        entry.bytes_sent += net_delta.bytes_sent;
        entry.bytes_received += net_delta.bytes_received;
        entry.scatter_micros += scatter_micros;
        results
    }

    /// One sub-query with the retry loop.
    fn attempt<O: DistributedOp>(
        &self,
        op: &O,
        worker: NodeId,
        policy: &OpPolicy,
        retries: &AtomicU64,
    ) -> Result<O::Partial, StcamError> {
        let payload = encode_to_vec(&op.request(worker));
        let mut attempt = 1u32;
        loop {
            let outcome = self
                .endpoint
                .call(worker, payload.clone(), policy.timeout)
                .map_err(StcamError::from)
                .and_then(|bytes| decode_from_slice::<Response>(&bytes).map_err(StcamError::from))
                .and_then(|response| op.decode(response));
            match outcome {
                Err(StcamError::Net(NetError::Timeout))
                    if op.idempotent() && attempt < policy.max_attempts =>
                {
                    retries.fetch_add(1, Ordering::Relaxed);
                    if !policy.backoff.is_zero() {
                        std::thread::sleep(policy.backoff * attempt);
                    }
                    attempt += 1;
                }
                other => return other,
            }
        }
    }
}

// ----------------------------------------------------------------------
// Partial decoders and target helpers shared by the operations
// ----------------------------------------------------------------------

fn want_ack(response: Response) -> Result<(), StcamError> {
    match response {
        Response::Ack => Ok(()),
        Response::Error(msg) => Err(StcamError::Remote(msg)),
        other => Err(StcamError::Remote(format!("expected ack, got {other:?}"))),
    }
}

fn want_observations(response: Response) -> Result<Vec<Observation>, StcamError> {
    match response {
        Response::Observations(obs) => Ok(obs),
        Response::Error(msg) => Err(StcamError::Remote(msg)),
        other => Err(StcamError::Remote(format!(
            "expected observations, got {other:?}"
        ))),
    }
}

fn want_counts(response: Response) -> Result<Vec<u64>, StcamError> {
    match response {
        Response::Counts(counts) => Ok(counts),
        Response::Error(msg) => Err(StcamError::Remote(msg)),
        other => Err(StcamError::Remote(format!(
            "expected counts, got {other:?}"
        ))),
    }
}

fn want_stats(response: Response) -> Result<WorkerStatsMsg, StcamError> {
    match response {
        Response::Stats(stats) => Ok(stats),
        Response::Error(msg) => Err(StcamError::Remote(msg)),
        other => Err(StcamError::Remote(format!("expected stats, got {other:?}"))),
    }
}

fn want_cell_counts(response: Response) -> Result<Vec<(u32, u64)>, StcamError> {
    match response {
        Response::CellCounts(cells) => Ok(cells),
        Response::Error(msg) => Err(StcamError::Remote(msg)),
        other => Err(StcamError::Remote(format!(
            "expected cell counts, got {other:?}"
        ))),
    }
}

/// Every alive worker, in id order.
fn all_alive(alive: &HashSet<NodeId>) -> Vec<NodeId> {
    let mut v: Vec<NodeId> = alive.iter().copied().collect();
    v.sort();
    v
}

/// The alive owners of cells overlapping `region`.
fn region_targets(partition: &PartitionMap, alive: &HashSet<NodeId>, region: BBox) -> Vec<NodeId> {
    partition
        .workers_for_region(region)
        .into_iter()
        .filter(|w| alive.contains(w))
        .collect()
}

/// Sorts by distance from `at` (ties broken by id for determinism).
/// Uses `total_cmp`, so NaN distances (degenerate positions) order
/// deterministically instead of poisoning the comparator.
pub(crate) fn sort_knn(observations: &mut [Observation], at: Point) {
    observations.sort_by(|a, b| {
        let da = at.distance_sq(a.position);
        let db = at.distance_sq(b.position);
        da.total_cmp(&db).then(a.id.cmp(&b.id))
    });
}

// ----------------------------------------------------------------------
// The operations
// ----------------------------------------------------------------------

/// Ingest barrier: a Ping round-trip to every alive worker. Per-link
/// FIFO guarantees all previously sent ingest traffic drained first; the
/// barrier survives retries because a retried ping is sent even later.
#[derive(Debug, Clone, Copy)]
pub struct FlushOp;

impl DistributedOp for FlushOp {
    type Partial = ();
    type Output = ();
    fn name(&self) -> &'static str {
        "flush"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, _partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        all_alive(alive)
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Ping
    }
    fn decode(&self, response: Response) -> Result<(), StcamError> {
        want_ack(response)
    }
    fn merge(self, _partials: Vec<(NodeId, ())>) {}
}

/// Liveness probe: a Ping whose timeout *is* the failure signal, so it
/// carries its own policy key ("probe", single attempt by default) and
/// is consumed through [`Executor::run`] rather than `execute`.
#[derive(Debug, Clone, Copy)]
pub struct ProbeOp;

impl DistributedOp for ProbeOp {
    type Partial = ();
    type Output = ();
    fn name(&self) -> &'static str {
        "probe"
    }
    fn targets(&self, _partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        all_alive(alive)
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Ping
    }
    fn decode(&self, response: Response) -> Result<(), StcamError> {
        want_ack(response)
    }
    fn merge(self, _partials: Vec<(NodeId, ())>) {}
}

/// Spatio-temporal range query over the shards overlapping `region`.
#[derive(Debug, Clone, Copy)]
pub struct RangeOp {
    /// Spatial predicate.
    pub region: BBox,
    /// Temporal predicate.
    pub window: TimeInterval,
}

impl DistributedOp for RangeOp {
    type Partial = Vec<Observation>;
    type Output = Vec<Observation>;
    fn name(&self) -> &'static str {
        "range"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        region_targets(partition, alive, self.region)
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Range {
            region: self.region,
            window: self.window,
        }
    }
    fn decode(&self, response: Response) -> Result<Vec<Observation>, StcamError> {
        want_observations(response)
    }
    fn merge(self, partials: Vec<(NodeId, Vec<Observation>)>) -> Vec<Observation> {
        let mut merged: Vec<Observation> = partials.into_iter().flat_map(|(_, obs)| obs).collect();
        merged.sort_by_key(|o| o.id);
        merged
    }
}

/// [`RangeOp`] with an entity-class filter pushed down to the workers.
#[derive(Debug, Clone, Copy)]
pub struct RangeFilteredOp {
    /// Spatial predicate.
    pub region: BBox,
    /// Temporal predicate.
    pub window: TimeInterval,
    /// Required class, as `EntityClass::as_u8`.
    pub class: u8,
}

impl DistributedOp for RangeFilteredOp {
    type Partial = Vec<Observation>;
    type Output = Vec<Observation>;
    fn name(&self) -> &'static str {
        "range_filtered"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        region_targets(partition, alive, self.region)
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::RangeFiltered {
            region: self.region,
            window: self.window,
            class: self.class,
        }
    }
    fn decode(&self, response: Response) -> Result<Vec<Observation>, StcamError> {
        want_observations(response)
    }
    fn merge(self, partials: Vec<(NodeId, Vec<Observation>)>) -> Vec<Observation> {
        let mut merged: Vec<Observation> = partials.into_iter().flat_map(|(_, obs)| obs).collect();
        merged.sort_by_key(|o| o.id);
        merged
    }
}

/// Phase one of the pruned kNN: ask only the owner of the query point's
/// cell; its k-th distance bounds phase two.
#[derive(Debug, Clone, Copy)]
pub struct KnnPhase1Op {
    /// The (alive) owner of the query point's cell.
    pub owner: NodeId,
    /// Query point.
    pub at: Point,
    /// Temporal predicate.
    pub window: TimeInterval,
    /// Result size.
    pub k: usize,
}

impl DistributedOp for KnnPhase1Op {
    type Partial = Vec<Observation>;
    type Output = Vec<Observation>;
    fn name(&self) -> &'static str {
        "knn_phase1"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, _partition: &PartitionMap, _alive: &HashSet<NodeId>) -> Vec<NodeId> {
        vec![self.owner]
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Knn {
            at: self.at,
            window: self.window,
            k: self.k as u32,
            max_distance: None,
        }
    }
    fn decode(&self, response: Response) -> Result<Vec<Observation>, StcamError> {
        want_observations(response)
    }
    fn merge(self, partials: Vec<(NodeId, Vec<Observation>)>) -> Vec<Observation> {
        let mut merged: Vec<Observation> = partials.into_iter().flat_map(|(_, obs)| obs).collect();
        sort_knn(&mut merged, self.at);
        merged.truncate(self.k);
        merged
    }
}

/// Phase two of the pruned kNN: scatter to the other shards intersecting
/// the bounding disk (or all others when phase one under-filled), then
/// fold the phase-one seed into the final top-k.
#[derive(Debug, Clone)]
pub struct KnnPhase2Op {
    /// Query point.
    pub at: Point,
    /// Temporal predicate.
    pub window: TimeInterval,
    /// Result size.
    pub k: usize,
    /// Prune radius from phase one (None = no bound established).
    pub bound: Option<f64>,
    /// The phase-one worker, excluded from the scatter.
    pub exclude: NodeId,
    /// Phase-one results, folded into the merge.
    pub seed: Vec<Observation>,
}

impl DistributedOp for KnnPhase2Op {
    type Partial = Vec<Observation>;
    type Output = Vec<Observation>;
    fn name(&self) -> &'static str {
        "knn_phase2"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        let candidates = match self.bound {
            Some(radius) => partition.workers_for_region(BBox::around(self.at, radius)),
            None => all_alive(alive),
        };
        candidates
            .into_iter()
            .filter(|w| *w != self.exclude && alive.contains(w))
            .collect()
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Knn {
            at: self.at,
            window: self.window,
            k: self.k as u32,
            max_distance: self.bound,
        }
    }
    fn decode(&self, response: Response) -> Result<Vec<Observation>, StcamError> {
        want_observations(response)
    }
    fn merge(self, partials: Vec<(NodeId, Vec<Observation>)>) -> Vec<Observation> {
        let mut merged = self.seed;
        merged.extend(partials.into_iter().flat_map(|(_, obs)| obs));
        sort_knn(&mut merged, self.at);
        merged.truncate(self.k);
        merged
    }
}

/// The naive kNN baseline: broadcast to every alive worker, no bound.
#[derive(Debug, Clone, Copy)]
pub struct KnnBroadcastOp {
    /// Query point.
    pub at: Point,
    /// Temporal predicate.
    pub window: TimeInterval,
    /// Result size.
    pub k: usize,
}

impl DistributedOp for KnnBroadcastOp {
    type Partial = Vec<Observation>;
    type Output = Vec<Observation>;
    fn name(&self) -> &'static str {
        "knn_broadcast"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, _partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        all_alive(alive)
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Knn {
            at: self.at,
            window: self.window,
            k: self.k as u32,
            max_distance: None,
        }
    }
    fn decode(&self, response: Response) -> Result<Vec<Observation>, StcamError> {
        want_observations(response)
    }
    fn merge(self, partials: Vec<(NodeId, Vec<Observation>)>) -> Vec<Observation> {
        let mut merged: Vec<Observation> = partials.into_iter().flat_map(|(_, obs)| obs).collect();
        sort_knn(&mut merged, self.at);
        merged.truncate(self.k);
        merged
    }
}

/// Heat-map aggregate with worker-side partial aggregation: each shard
/// reduces to a dense counts vector, the merge sums them.
#[derive(Debug, Clone, Copy)]
pub struct HeatmapOp {
    /// Aggregation buckets.
    pub buckets: GridSpecMsg,
    /// Temporal predicate.
    pub window: TimeInterval,
}

impl HeatmapOp {
    fn cell_count(&self) -> usize {
        self.buckets.cols as usize * self.buckets.rows as usize
    }
}

impl DistributedOp for HeatmapOp {
    type Partial = Vec<u64>;
    type Output = Vec<u64>;
    fn name(&self) -> &'static str {
        "heatmap"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        region_targets(partition, alive, self.buckets.to_grid().extent())
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Heatmap {
            buckets: self.buckets,
            window: self.window,
        }
    }
    fn decode(&self, response: Response) -> Result<Vec<u64>, StcamError> {
        let counts = want_counts(response)?;
        if counts.len() != self.cell_count() {
            return Err(StcamError::Remote("bucket count mismatch".into()));
        }
        Ok(counts)
    }
    fn merge(self, partials: Vec<(NodeId, Vec<u64>)>) -> Vec<u64> {
        let mut total = vec![0u64; self.cell_count()];
        for (_, counts) in partials {
            for (t, c) in total.iter_mut().zip(counts) {
                *t += c;
            }
        }
        total
    }
}

/// The `k` densest buckets of a heat-map grid, computed from *sparse*
/// per-shard partials: workers report only occupied buckets, the merge
/// sums and ranks. Ties rank by bucket index for determinism.
#[derive(Debug, Clone, Copy)]
pub struct TopCellsOp {
    /// Aggregation buckets.
    pub buckets: GridSpecMsg,
    /// Temporal predicate.
    pub window: TimeInterval,
    /// Number of cells to keep.
    pub k: usize,
}

impl DistributedOp for TopCellsOp {
    type Partial = Vec<(u32, u64)>;
    type Output = Vec<(CellId, u64)>;
    fn name(&self) -> &'static str {
        "top_cells"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        region_targets(partition, alive, self.buckets.to_grid().extent())
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::TopCells {
            buckets: self.buckets,
            window: self.window,
        }
    }
    fn decode(&self, response: Response) -> Result<Vec<(u32, u64)>, StcamError> {
        let cells = want_cell_counts(response)?;
        let limit = self.buckets.cols as u64 * self.buckets.rows as u64;
        if cells.iter().any(|&(idx, _)| idx as u64 >= limit) {
            return Err(StcamError::Remote("bucket index out of range".into()));
        }
        Ok(cells)
    }
    fn merge(self, partials: Vec<(NodeId, Vec<(u32, u64)>)>) -> Vec<(CellId, u64)> {
        let mut totals: HashMap<u32, u64> = HashMap::new();
        for (_, cells) in partials {
            for (idx, count) in cells {
                *totals.entry(idx).or_insert(0) += count;
            }
        }
        let mut ranked: Vec<(u32, u64)> = totals.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(self.k);
        let cols = self.buckets.cols;
        ranked
            .into_iter()
            .map(|(idx, count)| (CellId::new(idx % cols, idx / cols), count))
            .collect()
    }
}

/// Cluster-wide retention sweep. Idempotent: evicting before the same
/// cutoff twice is a no-op.
#[derive(Debug, Clone, Copy)]
pub struct EvictOp {
    /// Observations strictly older than this are dropped.
    pub cutoff: Timestamp,
}

impl DistributedOp for EvictOp {
    type Partial = ();
    type Output = ();
    fn name(&self) -> &'static str {
        "evict"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, _partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        all_alive(alive)
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::EvictBefore(self.cutoff)
    }
    fn decode(&self, response: Response) -> Result<(), StcamError> {
        want_ack(response)
    }
    fn merge(self, _partials: Vec<(NodeId, ())>) {}
}

/// Statistics collection from every alive worker.
#[derive(Debug, Clone, Copy)]
pub struct StatsOp;

impl DistributedOp for StatsOp {
    type Partial = WorkerStatsMsg;
    type Output = Vec<(NodeId, WorkerStatsMsg)>;
    fn name(&self) -> &'static str {
        "stats"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, _partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        all_alive(alive)
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Stats
    }
    fn decode(&self, response: Response) -> Result<WorkerStatsMsg, StcamError> {
        want_stats(response)
    }
    fn merge(self, mut partials: Vec<(NodeId, WorkerStatsMsg)>) -> Vec<(NodeId, WorkerStatsMsg)> {
        partials.sort_by_key(|(w, _)| *w);
        partials
    }
}

/// Installs a standing query at the workers overlapping its region
/// (optionally restricted to one worker, for failover re-registration).
/// Idempotent: re-inserting the same registration is a no-op.
#[derive(Debug, Clone, Copy)]
pub struct RegisterContinuousOp {
    /// Query id.
    pub id: ContinuousQueryId,
    /// Match predicate.
    pub predicate: Predicate,
    /// Node notified on match.
    pub notify: NodeId,
    /// When set, register only at this worker (it must overlap).
    pub only: Option<NodeId>,
}

impl DistributedOp for RegisterContinuousOp {
    type Partial = ();
    type Output = ();
    fn name(&self) -> &'static str {
        "register_continuous"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        region_targets(partition, alive, self.predicate.region)
            .into_iter()
            .filter(|w| self.only.is_none_or(|o| o == *w))
            .collect()
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::RegisterContinuous {
            id: self.id,
            predicate: self.predicate,
            notify: self.notify,
        }
    }
    fn decode(&self, response: Response) -> Result<(), StcamError> {
        want_ack(response)
    }
    fn merge(self, _partials: Vec<(NodeId, ())>) {}
}

/// Removes a standing query everywhere. Idempotent.
#[derive(Debug, Clone, Copy)]
pub struct UnregisterContinuousOp {
    /// Query id.
    pub id: ContinuousQueryId,
}

impl DistributedOp for UnregisterContinuousOp {
    type Partial = ();
    type Output = ();
    fn name(&self) -> &'static str {
        "unregister_continuous"
    }
    fn idempotent(&self) -> bool {
        true
    }
    fn targets(&self, _partition: &PartitionMap, alive: &HashSet<NodeId>) -> Vec<NodeId> {
        all_alive(alive)
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::UnregisterContinuous(self.id)
    }
    fn decode(&self, response: Response) -> Result<(), StcamError> {
        want_ack(response)
    }
    fn merge(self, _partials: Vec<(NodeId, ())>) {}
}

/// Shard migration, extract side: remove and return `region`'s contents
/// from one worker. **Not** idempotent — a retried extract after a lost
/// reply would discard the first extraction's data.
#[derive(Debug, Clone, Copy)]
pub struct ExtractRegionOp {
    /// The worker migrating data away.
    pub target: NodeId,
    /// The region being migrated.
    pub region: BBox,
}

impl DistributedOp for ExtractRegionOp {
    type Partial = Vec<Observation>;
    type Output = Vec<Observation>;
    fn name(&self) -> &'static str {
        "extract_region"
    }
    fn targets(&self, _partition: &PartitionMap, _alive: &HashSet<NodeId>) -> Vec<NodeId> {
        vec![self.target]
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::ExtractRegion {
            region: self.region,
        }
    }
    fn decode(&self, response: Response) -> Result<Vec<Observation>, StcamError> {
        want_observations(response)
    }
    fn merge(self, partials: Vec<(NodeId, Vec<Observation>)>) -> Vec<Observation> {
        partials.into_iter().flat_map(|(_, obs)| obs).collect()
    }
}

/// Shard migration, adopt side: hand a batch to its new owner. **Not**
/// idempotent — a retry after a lost reply would duplicate the batch.
#[derive(Debug, Clone)]
pub struct AdoptOp {
    /// The adopting worker.
    pub target: NodeId,
    /// The migrated observations.
    pub batch: Vec<Observation>,
}

impl DistributedOp for AdoptOp {
    type Partial = ();
    type Output = ();
    fn name(&self) -> &'static str {
        "adopt"
    }
    fn targets(&self, _partition: &PartitionMap, _alive: &HashSet<NodeId>) -> Vec<NodeId> {
        vec![self.target]
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Adopt(self.batch.clone())
    }
    fn decode(&self, response: Response) -> Result<(), StcamError> {
        want_ack(response)
    }
    fn merge(self, _partials: Vec<(NodeId, ())>) {}
}

/// Failover: tell a successor to absorb its replica log of `failed`.
/// **Not** idempotent — promotion re-replicates onward.
#[derive(Debug, Clone, Copy)]
pub struct PromoteOp {
    /// The successor absorbing the shard.
    pub target: NodeId,
    /// The failed primary.
    pub failed: NodeId,
}

impl DistributedOp for PromoteOp {
    type Partial = ();
    type Output = ();
    fn name(&self) -> &'static str {
        "promote"
    }
    fn targets(&self, _partition: &PartitionMap, _alive: &HashSet<NodeId>) -> Vec<NodeId> {
        vec![self.target]
    }
    fn request(&self, _to: NodeId) -> Request {
        Request::Promote {
            failed: self.failed,
        }
    }
    fn decode(&self, response: Response) -> Result<(), StcamError> {
        want_ack(response)
    }
    fn merge(self, _partials: Vec<(NodeId, ())>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcam_camnet::{CameraId, ObservationId, Signature};
    use stcam_net::{Fabric, LinkModel};
    use stcam_world::{EntityClass, EntityId};

    fn obs(seq: u64, x: f64) -> Observation {
        Observation {
            id: ObservationId::compose(CameraId(0), seq),
            camera: CameraId(0),
            time: Timestamp::ZERO,
            position: Point::new(x, 0.0),
            class: EntityClass::Car,
            signature: Signature::latent_for_entity(seq),
            truth: Some(EntityId(seq)),
        }
    }

    fn window() -> TimeInterval {
        TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(100))
    }

    fn one_worker_world() -> (PartitionMap, HashSet<NodeId>) {
        let extent = BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
        let partition = PartitionMap::uniform(extent, 250.0, vec![NodeId(1)]);
        let alive: HashSet<NodeId> = [NodeId(1)].into_iter().collect();
        (partition, alive)
    }

    #[test]
    fn policy_overrides_take_effect() {
        let fabric = Fabric::new(LinkModel::instant());
        let exec = Executor::new(
            fabric.register(NodeId(0)),
            OpPolicy::new(StdDuration::from_secs(5)),
        );
        assert_eq!(exec.policy_for("range").max_attempts, 3);
        exec.set_policy("range", OpPolicy::no_retry(StdDuration::from_millis(50)));
        assert_eq!(exec.policy_for("range").max_attempts, 1);
        assert_eq!(
            exec.policy_for("range").timeout,
            StdDuration::from_millis(50)
        );
        // Other ops keep the default.
        assert_eq!(exec.policy_for("heatmap").max_attempts, 3);
    }

    #[test]
    fn op_stats_since_subtracts() {
        let a = OpStats {
            invocations: 2,
            sub_queries: 8,
            bytes_sent: 100,
            ..Default::default()
        };
        let b = OpStats {
            invocations: 5,
            sub_queries: 20,
            bytes_sent: 450,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.invocations, 3);
        assert_eq!(d.sub_queries, 12);
        assert_eq!(d.bytes_sent, 350);
    }

    #[test]
    fn decoders_map_remote_errors() {
        let range = RangeOp {
            region: BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
            window: window(),
        };
        assert!(matches!(
            range.decode(Response::Error("boom".into())),
            Err(StcamError::Remote(_))
        ));
        assert!(matches!(
            range.decode(Response::Ack),
            Err(StcamError::Remote(_))
        ));
        assert!(matches!(FlushOp.decode(Response::Ack), Ok(())));
        let heat = HeatmapOp {
            buckets: GridSpecMsg {
                origin: Point::new(0.0, 0.0),
                cell_size: 10.0,
                cols: 2,
                rows: 2,
            },
            window: window(),
        };
        // Wrong-length counts vector is an application error, not a panic.
        assert!(matches!(
            heat.decode(Response::Counts(vec![1, 2, 3])),
            Err(StcamError::Remote(_))
        ));
        assert_eq!(
            heat.decode(Response::Counts(vec![1, 2, 3, 4])).unwrap(),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn sort_knn_orders_by_distance_then_id_and_survives_nan() {
        let mut v = vec![obs(2, 5.0), obs(0, 10.0), obs(1, 5.0)];
        sort_knn(&mut v, Point::new(0.0, 0.0));
        let seqs: Vec<u64> = v.iter().map(|o| o.id.seq()).collect();
        assert_eq!(seqs, vec![1, 2, 0]);
        // A NaN position no longer destabilises the order of the rest.
        let mut w = vec![obs(3, f64::NAN), obs(4, 1.0), obs(5, 2.0)];
        sort_knn(&mut w, Point::new(0.0, 0.0));
        assert_eq!(w[0].id.seq(), 4);
        assert_eq!(w[1].id.seq(), 5);
        assert_eq!(w[2].id.seq(), 3); // NaN distance sorts last under total_cmp
    }

    #[test]
    fn top_cells_merge_ranks_by_count_then_index() {
        let op = TopCellsOp {
            buckets: GridSpecMsg {
                origin: Point::new(0.0, 0.0),
                cell_size: 10.0,
                cols: 4,
                rows: 4,
            },
            window: window(),
            k: 3,
        };
        let partials = vec![
            (NodeId(1), vec![(0u32, 5u64), (5, 2)]),
            (NodeId(2), vec![(5, 2), (9, 4), (1, 4)]),
        ];
        let top = op.merge(partials);
        // cell 0 → 5; cells 1, 5, 9 → 4 each (tie broken by index).
        assert_eq!(top.len(), 3);
        assert_eq!(top[0], (CellId::new(0, 0), 5));
        assert_eq!(top[1], (CellId::new(1, 0), 4));
        assert_eq!(top[2], (CellId::new(1, 1), 4)); // index 5 = col 1, row 1
    }

    #[test]
    fn idempotent_read_is_retried_after_a_lost_request() {
        // A worker that swallows the first request it sees and serves
        // every later one: the seed coordinator would surface a timeout;
        // the executor retries and succeeds, with the retry on record.
        let fabric = Fabric::new(LinkModel::instant());
        let worker_ep = fabric.register(NodeId(1));
        let exec = Executor::new(
            fabric.register(NodeId(0)),
            OpPolicy {
                timeout: StdDuration::from_millis(100),
                max_attempts: 3,
                backoff: StdDuration::from_millis(1),
            },
        );
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop_worker = std::sync::Arc::clone(&stop);
        let flaky = std::thread::spawn(move || {
            let mut dropped = false;
            while !stop_worker.load(Ordering::Relaxed) {
                let Some(env) = worker_ep.recv_timeout(StdDuration::from_millis(10)) else {
                    continue;
                };
                if !dropped {
                    dropped = true; // swallow the first attempt
                    continue;
                }
                let _ = worker_ep.reply(
                    &env,
                    encode_to_vec(&Response::Observations(vec![obs(7, 1.0)])),
                );
            }
        });
        let (partition, alive) = one_worker_world();
        let result = exec.execute(
            RangeOp {
                region: BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)),
                window: window(),
            },
            &partition,
            &alive,
        );
        stop.store(true, Ordering::Relaxed);
        flaky.join().unwrap();
        let hits = result.expect("retry should have recovered the query");
        assert_eq!(hits.len(), 1);
        let stats = exec.stats_for("range");
        assert_eq!(stats.invocations, 1);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.sub_queries, 2); // original + retry
        assert_eq!(stats.failures, 0);
        assert!(stats.bytes_sent > 0);
        assert!(stats.bytes_received > 0);
    }

    #[test]
    fn non_idempotent_op_is_never_retried() {
        // Nobody serves NodeId(1): every attempt times out. Adopt must
        // fail on the first timeout without retrying (a retry could
        // duplicate the batch).
        let fabric = Fabric::new(LinkModel::instant());
        let _worker_ep = fabric.register(NodeId(1));
        let exec = Executor::new(
            fabric.register(NodeId(0)),
            OpPolicy {
                timeout: StdDuration::from_millis(50),
                max_attempts: 3,
                backoff: StdDuration::ZERO,
            },
        );
        let (partition, alive) = one_worker_world();
        let result = exec.execute(
            AdoptOp {
                target: NodeId(1),
                batch: vec![obs(0, 1.0)],
            },
            &partition,
            &alive,
        );
        assert!(matches!(result, Err(StcamError::Net(NetError::Timeout))));
        let stats = exec.stats_for("adopt");
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.sub_queries, 1);
        assert_eq!(stats.failures, 1);
    }

    #[test]
    fn empty_target_set_yields_empty_output_without_traffic() {
        let fabric = Fabric::new(LinkModel::instant());
        let exec = Executor::new(
            fabric.register(NodeId(0)),
            OpPolicy::new(StdDuration::from_secs(1)),
        );
        let (partition, _) = one_worker_world();
        let alive = HashSet::new(); // nobody alive
        let hits = exec
            .execute(
                RangeOp {
                    region: BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
                    window: window(),
                },
                &partition,
                &alive,
            )
            .unwrap();
        assert!(hits.is_empty());
        let stats = exec.stats_for("range");
        assert_eq!(stats.invocations, 1);
        assert_eq!(stats.sub_queries, 0);
        assert_eq!(stats.bytes_sent, 0);
    }
}
