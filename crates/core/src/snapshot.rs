//! Archive snapshots: export the cluster's observation archive to a
//! self-describing byte stream and import it into another cluster.
//!
//! The format is a sequence of CRC-protected frames (see
//! [`stcam_codec::frame`]), each containing one wire-encoded batch of
//! observations. Corruption anywhere in the stream is detected by the
//! frame checksums rather than silently mis-decoded.
//!
//! Used operationally for backup/restore and for moving an archive
//! between deployments (e.g. into a larger cluster).

use bytes::BytesMut;
use stcam_camnet::Observation;
use stcam_codec::{decode_from_slice, encode_to_vec, frame};
use stcam_geo::TimeInterval;

use crate::cluster::Cluster;
use crate::error::StcamError;

/// Observations per frame in exported archives.
const BATCH: usize = 1_000;

/// Exports every observation in `region` of the cluster over all retained
/// time to a framed byte stream.
///
/// # Errors
///
/// Propagates query failures.
pub fn export_archive(cluster: &Cluster, region: stcam_geo::BBox) -> Result<Vec<u8>, StcamError> {
    let observations = cluster.range_query(region, TimeInterval::ALL)?;
    let mut out = BytesMut::new();
    for batch in observations.chunks(BATCH) {
        frame::write_frame(&mut out, &encode_to_vec(&batch.to_vec()));
    }
    Ok(out.to_vec())
}

/// Imports a framed archive (as produced by [`export_archive`]) into the
/// cluster, returning the number of observations ingested. The caller
/// should [`flush`](Cluster::flush) before querying.
///
/// # Errors
///
/// Returns a codec error on any corrupted or truncated frame (nothing
/// after the corruption point is ingested; frames before it already
/// were), and propagates ingest failures.
pub fn import_archive(cluster: &Cluster, bytes: &[u8]) -> Result<usize, StcamError> {
    let mut buf = BytesMut::from(bytes);
    let mut total = 0usize;
    loop {
        match frame::read_frame(&mut buf)? {
            Some(payload) => {
                let batch: Vec<Observation> = decode_from_slice(&payload)?;
                total += cluster.ingest(batch)?;
            }
            None if buf.is_empty() => return Ok(total),
            None => {
                return Err(StcamError::Codec(stcam_codec::DecodeError::UnexpectedEnd {
                    context: "archive frame",
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, ClusterConfig};
    use stcam_camnet::{CameraId, ObservationId, Signature};
    use stcam_geo::{BBox, Point, Timestamp};
    use stcam_net::LinkModel;
    use stcam_world::{EntityClass, EntityId};

    fn extent() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0))
    }

    fn launch(workers: usize) -> Cluster {
        Cluster::launch(
            ClusterConfig::new(extent(), workers)
                .with_replication(0)
                .with_link(LinkModel::instant()),
        )
        .expect("launch")
    }

    fn batch(n: u64) -> Vec<Observation> {
        (0..n)
            .map(|i| Observation {
                id: ObservationId::compose(CameraId(0), i),
                camera: CameraId(0),
                time: Timestamp::from_millis((i % 60) * 1000),
                position: Point::new((i as f64 * 37.0) % 1000.0, (i as f64 * 53.0) % 1000.0),
                class: EntityClass::Car,
                signature: Signature::latent_for_entity(i),
                truth: Some(EntityId(i)),
            })
            .collect()
    }

    #[test]
    fn export_import_round_trip_between_clusters() {
        let source = launch(3);
        source.ingest(batch(2_500)).unwrap();
        source.flush().unwrap();
        let bytes = export_archive(&source, extent()).unwrap();
        assert!(bytes.len() > 100_000, "archive suspiciously small");
        source.shutdown();

        // Restore into a differently sized cluster.
        let target = launch(5);
        let imported = import_archive(&target, &bytes).unwrap();
        assert_eq!(imported, 2_500);
        target.flush().unwrap();
        let held = target.range_query(extent(), TimeInterval::ALL).unwrap();
        assert_eq!(held.len(), 2_500);
        target.shutdown();
    }

    #[test]
    fn corrupted_archive_is_detected() {
        let source = launch(2);
        source.ingest(batch(1_200)).unwrap();
        source.flush().unwrap();
        let mut bytes = export_archive(&source, extent()).unwrap();
        source.shutdown();
        // Flip a byte in the middle of the second frame's payload.
        let idx = bytes.len() / 2;
        bytes[idx] ^= 0x40;
        let target = launch(2);
        assert!(matches!(
            import_archive(&target, &bytes),
            Err(StcamError::Codec(_))
        ));
        target.shutdown();
    }

    #[test]
    fn truncated_archive_is_detected() {
        let source = launch(2);
        source.ingest(batch(1_200)).unwrap();
        source.flush().unwrap();
        let bytes = export_archive(&source, extent()).unwrap();
        source.shutdown();
        let target = launch(2);
        assert!(matches!(
            import_archive(&target, &bytes[..bytes.len() - 10]),
            Err(StcamError::Codec(_))
        ));
        target.shutdown();
    }

    #[test]
    fn empty_archive_round_trips() {
        let source = launch(2);
        let bytes = export_archive(&source, extent()).unwrap();
        assert!(bytes.is_empty());
        source.shutdown();
        let target = launch(2);
        assert_eq!(import_archive(&target, &bytes).unwrap(), 0);
        target.shutdown();
    }

    #[test]
    fn regional_export_filters_by_region() {
        let source = launch(3);
        source.ingest(batch(1_000)).unwrap();
        source.flush().unwrap();
        let half = BBox::new(Point::new(0.0, 0.0), Point::new(500.0, 1000.0));
        let bytes = export_archive(&source, half).unwrap();
        let expected = source.range_query(half, TimeInterval::ALL).unwrap().len();
        source.shutdown();
        let target = launch(3);
        assert_eq!(import_archive(&target, &bytes).unwrap(), expected);
        target.shutdown();
    }
}
