//! Criterion micro-benchmarks for the hot kernels underneath every
//! experiment: wire codec, geometry, local index operations, signature
//! distance, and partition routing.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stcam::{PartitionMap, PartitionPolicy};
use stcam_bench::{square_extent, synthetic_stream};
use stcam_camnet::Signature;
use stcam_codec::{decode_from_slice, encode_to_vec};
use stcam_geo::{zorder, BBox, Duration, Point, Polygon, TimeInterval, Timestamp};
use stcam_index::{FlatIndex, IndexConfig, StIndex};
use stcam_net::NodeId;

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let obs = synthetic_stream(1, square_extent(1000.0), 60, 1)
        .pop()
        .unwrap();
    let encoded = encode_to_vec(&obs);
    group.bench_function("encode_observation", |b| {
        b.iter(|| encode_to_vec(black_box(&obs)))
    });
    group.bench_function("decode_observation", |b| {
        b.iter(|| decode_from_slice::<stcam_camnet::Observation>(black_box(&encoded)).unwrap())
    });
    let batch = synthetic_stream(100, square_extent(1000.0), 60, 2);
    group.bench_function("encode_batch_100", |b| {
        b.iter(|| encode_to_vec(black_box(&batch)))
    });
    group.finish();
}

fn bench_geometry(c: &mut Criterion) {
    let mut group = c.benchmark_group("geometry");
    let sector = Polygon::sector(Point::new(0.0, 0.0), 0.7, 1.0, 150.0, 12);
    let p = Point::new(80.0, 40.0);
    group.bench_function("sector_contains", |b| {
        b.iter(|| black_box(&sector).contains(black_box(p)))
    });
    group.bench_function("zorder_encode_decode", |b| {
        b.iter(|| zorder::decode(zorder::encode(black_box(12345), black_box(67890))))
    });
    let bb = BBox::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    group.bench_function("bbox_intersects", |b| {
        b.iter(|| black_box(&sector).intersects_bbox(black_box(&bb)))
    });
    group.finish();
}

fn bench_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("index");
    let extent = square_extent(4000.0);
    let stream = synthetic_stream(100_000, extent, 300, 3);
    let config = IndexConfig::new(extent, 50.0, Duration::from_secs(10));

    group.bench_function("insert_100k", |b| {
        b.iter(|| {
            let mut index = StIndex::new(config.clone());
            for obs in &stream {
                index.insert(obs.clone());
            }
            index.len()
        })
    });

    let mut index = StIndex::new(config.clone());
    index.insert_batch(stream.iter().cloned());
    let mut flat = FlatIndex::new();
    flat.extend(stream.iter().cloned());
    let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(300));
    let region = BBox::around(Point::new(2000.0, 2000.0), 200.0);

    group.bench_function("range_indexed", |b| {
        b.iter(|| {
            black_box(&index)
                .range(black_box(region), black_box(window))
                .len()
        })
    });
    group.bench_function("range_flat_scan", |b| {
        b.iter(|| {
            black_box(&flat)
                .range(black_box(region), black_box(window))
                .len()
        })
    });
    for k in [1usize, 16, 128] {
        group.bench_with_input(BenchmarkId::new("knn_indexed", k), &k, |b, &k| {
            b.iter(|| {
                black_box(&index)
                    .knn(black_box(Point::new(1500.0, 2500.0)), black_box(window), k)
                    .len()
            })
        });
    }
    group.bench_function("heatmap_64x64", |b| {
        let buckets = stcam_geo::GridSpec::covering(extent, 4000.0 / 64.0);
        b.iter(|| black_box(&index).heatmap(black_box(&buckets), black_box(window)))
    });
    group.finish();
}

fn bench_signature(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature");
    let a = Signature::latent_for_entity(1);
    let b_sig = Signature::latent_for_entity(2);
    group.bench_function("distance", |b| {
        b.iter(|| black_box(&a).distance(black_box(&b_sig)))
    });
    group.bench_function("latent_derivation", |b| {
        b.iter(|| Signature::latent_for_entity(black_box(77)))
    });
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    let extent = square_extent(8000.0);
    let workers: Vec<NodeId> = (1..=16).map(NodeId).collect();
    let map = PartitionMap::uniform(extent, 500.0, workers.clone());
    group.bench_function("owner_of", |b| {
        b.iter(|| map.owner_of(black_box(Point::new(3120.0, 5470.0))))
    });
    group.bench_function("workers_for_region", |b| {
        let region = BBox::around(Point::new(4000.0, 4000.0), 1500.0);
        b.iter(|| map.workers_for_region(black_box(region)).len())
    });
    let loads: Vec<u64> = (0..map.grid().cell_count())
        .map(|i| (i % 97) * 13)
        .collect();
    group.bench_function("build_load_aware_16w", |b| {
        b.iter(|| {
            PartitionMap::build(
                PartitionPolicy::LoadAware,
                extent,
                500.0,
                workers.clone(),
                Some(black_box(&loads)),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_geometry,
    bench_index,
    bench_signature,
    bench_partition
);
criterion_main!(benches);
