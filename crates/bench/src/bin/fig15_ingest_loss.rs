//! Figure 15 — acked ingest under lossy links.
//!
//! The headline for the reliable write path: with a uniform message drop
//! probability on **every** fabric link, a fixed stream is ingested
//! through the acknowledged path while the loss is active. The sweep
//! reports, per drop rate, how much of the stream was acknowledged
//! inline, the wall-clock and byte cost of the retransmissions, and —
//! after the links heal and `flush` drains anything still parked — the
//! durability audit: a strict full-range query must return every
//! observation the cluster ever acknowledged. The gate asserts exactly
//! that (zero acked loss) plus convergence (nothing unacked left behind
//! once the links are healthy), at every drop rate.
//!
//! Expected shape: acked throughput degrades gracefully with the drop
//! rate (each lost `IngestSeq`/`ReplicateSeq` leg costs one retransmit
//! after a short backoff), bytes inflate by roughly the retransmission
//! rate, and the audit column stays at exactly zero lost — the acked
//! contract is loss-rate-independent.
//!
//! ```text
//! cargo run -p stcam-bench --release --bin fig15_ingest_loss
//! ```
//!
//! Environment knobs (for CI smoke runs): `FIG15_STREAM` (default
//! 20000), `FIG15_CHUNK` (ingest batch size, default 500), and
//! `FIG15_NO_ASSERT=1` to report without the durability gate.

use stcam_bench::report::{obj, Report, Value};
use stcam_bench::{
    fmt_count, lan_config, launch, square_extent, synthetic_stream, timed, window_secs, Table,
};

const EXTENT_M: f64 = 8_000.0;
const WORKERS: usize = 8;
const REPLICATION: usize = 2;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let stream_len = env_usize("FIG15_STREAM", 20_000);
    let chunk = env_usize("FIG15_CHUNK", 500);
    let gate = std::env::var("FIG15_NO_ASSERT").map_or(true, |v| v != "1");

    let extent = square_extent(EXTENT_M);
    println!(
        "Figure 15: acked ingest under lossy links ({WORKERS} workers, r={REPLICATION}, {} observations)\n",
        fmt_count(stream_len as f64)
    );
    let mut table = Table::new(&[
        "drop",
        "acked inline",
        "wall s",
        "obs/s",
        "bytes x",
        "held after heal",
        "acked lost",
    ]);
    let mut rows: Vec<Value> = Vec::new();
    let mut baseline_bytes = 0.0;

    for drop in [0.0f64, 0.01, 0.05] {
        // A lost message only surfaces as an RPC timeout, so the default
        // 5 s budget would dominate the wall clock; on the modelled LAN
        // (sub-millisecond RTT) 100 ms is still two orders of magnitude
        // of headroom.
        let cluster = launch(
            lan_config(extent, WORKERS, REPLICATION)
                .with_rpc_timeout(std::time::Duration::from_millis(100)),
        );
        let stream = synthetic_stream(stream_len, extent, 600, 67);
        cluster.set_drop_probability(drop);

        // Acked ingest while the links are lossy: `accepted` certifies
        // owner + full replica set, so anything short of the chunk size
        // is parked in the sender, not lost.
        let (acked_inline, wall) = timed(|| {
            let mut acked = 0usize;
            for batch in stream.chunks(chunk) {
                acked += cluster.ingest(batch.to_vec()).expect("acked ingest");
            }
            acked
        });

        // Heal, then drain: flush is a write barrier over the parked
        // window, so on Ok the acked set is exactly the whole stream.
        cluster.set_drop_probability(0.0);
        cluster.flush().expect("flush after links healed");
        let held = cluster
            .range_query(extent.inflated(100.0), window_secs(10_000))
            .expect("durability audit")
            .len();
        let acked_lost = acked_inline.saturating_sub(held);

        let bytes = cluster.fabric_stats().total_bytes as f64;
        if drop == 0.0 {
            baseline_bytes = bytes;
        }
        let bytes_x = bytes / baseline_bytes;
        table.row(&[
            format!("{:.0}%", drop * 100.0),
            fmt_count(acked_inline as f64),
            format!("{wall:.2}"),
            format!("{:.0}", acked_inline as f64 / wall),
            format!("{bytes_x:.2}x"),
            fmt_count(held as f64),
            acked_lost.to_string(),
        ]);
        rows.push(obj(vec![
            ("drop", Value::from(drop)),
            ("acked_inline", Value::from(acked_inline)),
            ("wall_s", Value::from(wall)),
            ("obs_per_s", Value::from(acked_inline as f64 / wall)),
            ("bytes_ratio", Value::from(bytes_x)),
            ("held_after_heal", Value::from(held)),
            ("acked_lost", Value::from(acked_lost)),
        ]));

        if gate {
            assert_eq!(
                acked_lost, 0,
                "acked-ingest contract violated at drop={drop}: {acked_lost} acked observations lost"
            );
            assert_eq!(
                held, stream_len,
                "convergence violated at drop={drop}: {held}/{stream_len} held after heal+flush"
            );
        }
        cluster.shutdown();
    }
    table.print();
    println!(
        "\n(uniform drop probability on every link while ingesting; `acked inline`\n\
         is what the sender was told is durable before the links healed; the gate\n\
         is zero acked loss and full convergence once they do)"
    );

    let mut report = Report::new("fig15_ingest_loss");
    report
        .set("workers", WORKERS)
        .set("replication", REPLICATION)
        .set("stream", stream_len)
        .set("rows", rows);
    report.emit();
    if gate {
        println!("durability gate passed: zero acked loss at every drop rate");
    }
}
