//! Table 1 — workload characteristics.
//!
//! Reports, per deployment scale, the camera count, ground coverage,
//! entity population, observation rate, and mean wire size per
//! observation: the envelope every other experiment operates in.
//!
//! ```text
//! cargo run -p stcam-bench --release --bin tab1_workload
//! ```

use stcam_bench::{city_stream, fmt_count, Table};
use stcam_codec::encoded_len;

fn main() {
    println!("Table 1: workload characteristics (reconstructed evaluation)\n");
    let mut table = Table::new(&[
        "deployment",
        "extent",
        "cameras",
        "coverage",
        "entities",
        "obs/s",
        "bytes/obs",
        "fp rate",
    ]);
    // (label, extent m, cameras, entities, seconds)
    let scales = [
        ("town", 2_000.0, 100, 500, 30),
        ("district", 4_000.0, 400, 2_000, 30),
        ("city", 8_000.0, 1_000, 10_000, 20),
    ];
    for (label, extent_m, cameras, entities, seconds) in scales {
        let stream = city_stream(extent_m, cameras, entities, seconds, 42);
        let n = stream.observations.len();
        let rate = n as f64 / seconds as f64;
        let bytes: usize = stream
            .observations
            .iter()
            .take(1000)
            .map(encoded_len)
            .sum::<usize>()
            / 1000.min(n.max(1));
        let fp = stream
            .observations
            .iter()
            .filter(|o| o.is_false_positive())
            .count() as f64
            / n.max(1) as f64;
        table.row(&[
            label.to_string(),
            format!("{:.0} km²", (extent_m / 1000.0) * (extent_m / 1000.0)),
            cameras.to_string(),
            format!("{:.0}%", stream.network.coverage_fraction(60) * 100.0),
            fmt_count(entities as f64),
            fmt_count(rate),
            bytes.to_string(),
            format!("{:.1}%", fp * 100.0),
        ]);
    }
    table.print();
    println!("\ndetector: p_detect 0.92, position σ 1.5 m, signature σ 0.08, class error 3%");
}
