//! Figure 11 — end-to-end scale-up: sustained ingest rate vs camera-network
//! size.
//!
//! The full pipeline (city simulation → detectors → edge ingestors →
//! cluster) at growing deployment scales, entities proportional to
//! cameras, cluster size fixed at 8 workers. Metrics: the observation
//! rate the deployment *generates* and the rate the bottleneck shard can
//! *sustain* (critical path, as in Figure 4). The deployment saturates
//! the 8-worker cluster when generated rate crosses sustained rate —
//! the provisioning rule the framework gives operators.
//!
//! ```text
//! cargo run -p stcam-bench --release --bin fig11_camera_scale
//! ```

use stcam_bench::{
    city_stream, fmt_count, lan_config, launch, max_shard_busy_secs, square_extent, Table,
};

const WORKERS: usize = 8;
const SECONDS: u64 = 20;

fn main() {
    println!(
        "Figure 11: deployment scale-up, {WORKERS}-worker cluster, {SECONDS} s of city time per point\n"
    );
    let mut table = Table::new(&[
        "cameras",
        "entities",
        "observations",
        "generated obs/s",
        "sustained obs/s (crit path)",
        "headroom",
    ]);

    for (cameras, entities, extent_m) in [
        (250usize, 2_500usize, 4_000.0),
        (500, 5_000, 5_600.0),
        (1_000, 10_000, 8_000.0),
        (2_000, 20_000, 11_200.0),
        (4_000, 40_000, 16_000.0),
    ] {
        let stream = city_stream(extent_m, cameras, entities, SECONDS, 61);
        let n = stream.observations.len();
        let generated_rate = n as f64 / SECONDS as f64;

        let cluster = launch(lan_config(square_extent(extent_m), WORKERS, 1));
        let ingestor = cluster.create_ingestor();
        for chunk in stream.observations.chunks(1000) {
            ingestor.ingest(chunk.to_vec()).expect("ingest");
        }
        ingestor.flush().expect("flush");
        let stats = cluster.stats().expect("stats");
        assert_eq!(stats.total_primary() as usize, n, "observations lost");
        let max_busy_s = max_shard_busy_secs(&stats);
        let sustained_rate = n as f64 / max_busy_s.max(1e-9);
        table.row(&[
            cameras.to_string(),
            fmt_count(entities as f64),
            fmt_count(n as f64),
            fmt_count(generated_rate),
            fmt_count(sustained_rate),
            format!("{:.0}x", sustained_rate / generated_rate),
        ]);
        cluster.shutdown();
    }
    table.print();
    println!("\n(headroom = sustained ÷ generated; the cluster saturates where it crosses 1x)");
}
