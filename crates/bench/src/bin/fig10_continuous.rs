//! Figure 10 — continuous-query cost vs number of standing queries.
//!
//! Registers 10–5 000 geo-fence predicates, streams a fixed workload, and
//! measures the ingest critical path (per-observation worker busy time)
//! and notification delivery. Expected shape: per-observation cost grows
//! linearly with the standing-query count a worker must evaluate — this
//! is the motivation for decomposing registrations to only the workers
//! whose shards overlap each predicate, which divides the per-worker
//! count by the cluster size for local predicates.
//!
//! ```text
//! cargo run -p stcam-bench --release --bin fig10_continuous
//! ```

use std::time::Duration as StdDuration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stcam::Predicate;
use stcam_bench::{
    fmt_count, ingest_chunked, lan_config, launch, square_extent, synthetic_stream, Table,
};
use stcam_geo::{BBox, Point};

const EXTENT_M: f64 = 8_000.0;
const WORKERS: usize = 8;
const STREAM_LEN: usize = 50_000;
const FENCE_RADIUS: f64 = 250.0;

fn main() {
    let extent = square_extent(EXTENT_M);
    let stream = synthetic_stream(STREAM_LEN, extent, 600, 41);
    println!(
        "Figure 10: continuous-query cost vs standing queries ({} observations, {WORKERS} workers, {:.0} m geo-fences)\n",
        fmt_count(STREAM_LEN as f64),
        FENCE_RADIUS
    );
    let mut table = Table::new(&[
        "queries",
        "ingest busy µs/obs",
        "notifications",
        "matches",
        "queries/worker",
    ]);

    for count in [0usize, 10, 100, 1_000, 5_000] {
        let cluster = launch(lan_config(extent, WORKERS, 0));
        let mut rng = StdRng::seed_from_u64(count as u64 + 1);
        for _ in 0..count {
            let center = Point::new(rng.gen_range(0.0..EXTENT_M), rng.gen_range(0.0..EXTENT_M));
            cluster
                .register_continuous(Predicate {
                    region: BBox::around(center, FENCE_RADIUS),
                    class: None,
                })
                .expect("register");
        }
        // Per-worker registration count: predicates register only at
        // workers whose shard overlaps the fence.
        let per_worker: f64 = {
            let stats = cluster.stats().expect("stats");
            stats
                .workers
                .iter()
                .map(|(_, s)| s.continuous_queries as f64)
                .sum::<f64>()
                / stats.workers.len() as f64
        };

        let busy_before: u64 = cluster
            .stats()
            .expect("stats")
            .workers
            .iter()
            .map(|(_, s)| s.busy_micros)
            .sum();
        ingest_chunked(&cluster, &stream, 500);
        let stats = cluster.stats().expect("stats");
        let busy_after: u64 = stats.workers.iter().map(|(_, s)| s.busy_micros).sum();
        let notifications_sent: u64 = stats
            .workers
            .iter()
            .map(|(_, s)| s.notifications_sent)
            .sum();
        let matches: usize = cluster
            .poll_notifications(StdDuration::from_millis(500))
            .iter()
            .map(|n| n.matches.len())
            .sum();
        table.row(&[
            count.to_string(),
            format!(
                "{:.2}",
                (busy_after - busy_before) as f64 / STREAM_LEN as f64
            ),
            notifications_sent.to_string(),
            fmt_count(matches as f64),
            format!("{per_worker:.1}"),
        ]);
        cluster.shutdown();
    }
    table.print();
}
