//! Figure 16 — archive scale: flat memory ceiling under the tiered
//! mutable-head + sealed-segment store.
//!
//! Sweeps the archive from 10⁶ to 10⁷ observations at a **constant
//! ingest rate** (so the mutable head holds a fixed-size working set
//! throughout) with segment spilling enabled, and shows that
//!
//! 1. peak resident memory stays flat as the archive grows 10× — closed
//!    slices are frozen into compressed columnar segments and their
//!    payloads spilled to disk, leaving only the head and the per-segment
//!    footers resident, and
//! 2. query latency over the sealed tier stays within small factors of
//!    the all-mutable baseline — the per-segment cell directory lets
//!    `range`/`knn`/`heatmap` read back only the blocks a query touches.
//!
//! The time-windowed query mix has scale-independent result sizes (fixed
//! window × constant rate), so latencies are comparable across scales.
//!
//! ```text
//! cargo run -p stcam-bench --release --bin fig16_archive_scale
//! ```
//!
//! Knobs: `FIG16_SCALES=1000000,10000000` overrides the sweep;
//! `FIG16_NO_ASSERT=1` reports without enforcing the acceptance gates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stcam_bench::report::{obj, Report, Value};
use stcam_bench::{fmt_count, square_extent, synthetic_stream, timed, LatencyStats, Table};
use stcam_geo::{BBox, Duration, GridSpec, Point, TimeInterval, Timestamp};
use stcam_index::{IndexConfig, StIndex};

const EXTENT_M: f64 = 8_000.0;
const CELL_M: f64 = 400.0;
const SLICE_SECS: u64 = 60;
/// Constant ingest rate: 10⁶ observations ≙ 600 s of archive.
const RATE_OBS_PER_SEC: u64 = 1_667;
const CHUNK_SECS: u64 = 60;
const QUERIES: usize = 100;
/// Deep-history analytics window (count / heatmap / archival range):
/// spans many slices, so interior segments resolve from their footers.
const DEEP_WINDOW_SECS: u64 = 600;
/// Heat-map bucket edge: a multiple of the index cell size, so sealed
/// blocks of interior cells aggregate straight from footer counts.
const HEAT_BUCKET_M: f64 = 1_200.0;

/// One scale's measurements.
struct ScaleRun {
    n: usize,
    insert_s: f64,
    peak_resident: usize,
    spilled_bytes: usize,
    sealed_segments: usize,
    mix: QueryMix,
}

/// Latencies of the query mix at one scale.
struct QueryMix {
    /// Materialising range over the most recent 60 s (head-resident).
    recent: LatencyStats,
    /// Materialising range over a deep 600 s window (decode-bound).
    range: LatencyStats,
    /// `range_count` of a cell-aligned zone over a slice-aligned deep
    /// window (footer-resolved).
    count: LatencyStats,
    /// kNN-16 over a random 60 s window.
    knn: LatencyStats,
    /// Whole-extent heat-map over a slice-aligned deep window
    /// (footer-resolved for interior cells).
    heatmap: LatencyStats,
    hits: usize,
}

fn scales_from_env() -> Vec<usize> {
    match std::env::var("FIG16_SCALES") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("FIG16_SCALES entry"))
            .collect(),
        Err(_) => vec![1_000_000, 3_000_000, 10_000_000],
    }
}

/// Streams `n` observations at the constant rate into `index`,
/// chunk-by-chunk (the full stream is never materialised — the point of
/// the experiment is that the *index* does not hold it either), sampling
/// the resident gauge after every chunk. Returns (peak resident, insert
/// seconds).
fn ingest_constant_rate(index: &mut StIndex, n: usize, extent: BBox, seed: u64) -> (usize, f64) {
    let chunk_n = (RATE_OBS_PER_SEC * CHUNK_SECS) as usize;
    let mut peak = 0usize;
    let mut inserted = 0usize;
    let mut chunk_no = 0u64;
    let (_, insert_s) = timed(|| {
        while inserted < n {
            let take = chunk_n.min(n - inserted);
            let mut chunk = synthetic_stream(take, extent, CHUNK_SECS, seed + chunk_no);
            let base_ms = chunk_no * CHUNK_SECS * 1000;
            for o in &mut chunk {
                o.time = Timestamp::from_millis(o.time.as_millis() + base_ms);
            }
            index.insert_batch(chunk);
            inserted += take;
            chunk_no += 1;
            peak = peak.max(index.stats().resident_bytes);
        }
    });
    (peak, insert_s)
}

/// The query mix. Windows have fixed durations and the ingest rate is
/// constant, so per-query result sizes are independent of archive depth
/// and latencies are comparable across scales. Two horizons are probed:
/// the most recent 60 s (the mutable head in the tiered config) and deep
/// 600 s analytics windows at random offsets (sealed segments).
fn query(index: &StIndex, archive_secs: u64, seed: u64) -> QueryMix {
    let mut rng = StdRng::seed_from_u64(seed);
    let points: Vec<Point> = (0..QUERIES)
        .map(|_| Point::new(rng.gen_range(0.0..EXTENT_M), rng.gen_range(0.0..EXTENT_M)))
        .collect();
    let deep: Vec<u64> = (0..QUERIES)
        .map(|_| rng.gen_range(0..archive_secs.saturating_sub(DEEP_WINDOW_SECS).max(1)))
        .collect();
    // Analytics (count / heatmap) windows align to slice boundaries, as a
    // per-minute dashboard would: every overlapped segment is then fully
    // covered in time and interior cells resolve from footer counts alone.
    let max_slice = archive_secs.saturating_sub(DEEP_WINDOW_SECS) / SLICE_SECS;
    let aligned: Vec<u64> = (0..QUERIES)
        .map(|_| rng.gen_range(0..=max_slice) * SLICE_SECS)
        .collect();
    // Count regions align to the index grid (district-style zones in the
    // interior), so sealed blocks are either fully inside or fully outside.
    let grid_cells = (EXTENT_M / CELL_M) as u64;
    let span_cells = (HEAT_BUCKET_M / CELL_M) as u64;
    let zones: Vec<BBox> = (0..QUERIES)
        .map(|_| {
            let gx = rng.gen_range(1..grid_cells - span_cells) as f64;
            let gy = rng.gen_range(1..grid_cells - span_cells) as f64;
            // Half-open on the far edges: the district covers its own
            // cells, not the boundary line of the next row/column.
            BBox::from_corners(
                Point::new(gx * CELL_M, gy * CELL_M),
                Point::new(
                    ((gx + span_cells as f64) * CELL_M).next_down(),
                    ((gy + span_cells as f64) * CELL_M).next_down(),
                ),
            )
        })
        .collect();
    let short: Vec<u64> = (0..QUERIES)
        .map(|_| rng.gen_range(0..archive_secs.saturating_sub(60).max(1)))
        .collect();
    let window = |t0: u64, secs: u64| {
        TimeInterval::new(Timestamp::from_secs(t0), Timestamp::from_secs(t0 + secs))
    };
    let recent_window = window(archive_secs.saturating_sub(60), 60);

    let mut recent_s = Vec::with_capacity(QUERIES);
    for &p in &points {
        let (_, s) = timed(|| index.range(BBox::around(p, 250.0), recent_window).len());
        recent_s.push(s);
    }
    let mut hits = 0usize;
    let mut range_s = Vec::with_capacity(QUERIES);
    for (&p, &t0) in points.iter().zip(&deep) {
        let (n, s) = timed(|| {
            index
                .range(BBox::around(p, 250.0), window(t0, DEEP_WINDOW_SECS))
                .len()
        });
        hits += n;
        range_s.push(s);
    }
    let mut count_s = Vec::with_capacity(QUERIES);
    for (zone, &t0) in zones.iter().zip(&aligned) {
        let (_, s) = timed(|| index.range_count(*zone, window(t0, DEEP_WINDOW_SECS)));
        count_s.push(s);
    }
    let mut knn_s = Vec::with_capacity(QUERIES);
    for (&p, &t0) in points.iter().zip(&short) {
        let (_, s) = timed(|| index.knn(p, window(t0, 60), 16).len());
        knn_s.push(s);
    }
    let buckets = GridSpec::covering(square_extent(EXTENT_M), HEAT_BUCKET_M);
    let mut heat_s = Vec::with_capacity(QUERIES);
    for &t0 in &aligned {
        let (_, s) = timed(|| index.heatmap(&buckets, window(t0, DEEP_WINDOW_SECS)));
        heat_s.push(s);
    }
    QueryMix {
        recent: LatencyStats::from_samples(&recent_s),
        range: LatencyStats::from_samples(&range_s),
        count: LatencyStats::from_samples(&count_s),
        knn: LatencyStats::from_samples(&knn_s),
        heatmap: LatencyStats::from_samples(&heat_s),
        hits,
    }
}

fn run_scale(n: usize, spill_dir: &std::path::Path, sealing: bool) -> ScaleRun {
    let extent = square_extent(EXTENT_M);
    let archive_secs = n as u64 / RATE_OBS_PER_SEC + 1;
    let mut config = IndexConfig::new(extent, CELL_M, Duration::from_secs(SLICE_SECS));
    config = if sealing {
        config.with_spill_dir(spill_dir)
    } else {
        config.without_sealing()
    };
    let mut index = StIndex::new(config);
    let (peak_resident, insert_s) = ingest_constant_rate(&mut index, n, extent, 41);
    let stats = index.stats();
    let mix = query(&index, archive_secs, 97);
    ScaleRun {
        n,
        insert_s,
        peak_resident,
        spilled_bytes: stats.spilled_bytes,
        sealed_segments: stats.sealed_segments,
        mix,
    }
}

fn main() {
    let scales = scales_from_env();
    let assert_gates = std::env::var("FIG16_NO_ASSERT").is_err();
    let spill_dir = std::env::temp_dir().join(format!("stcam-fig16-{}", std::process::id()));
    std::fs::create_dir_all(&spill_dir).expect("create spill dir");
    println!(
        "Figure 16 (archive scale): sealed-segment store, {} sweep at {} obs/s\n",
        scales
            .iter()
            .map(|&n| fmt_count(n as f64))
            .collect::<Vec<_>>()
            .join(" → "),
        RATE_OBS_PER_SEC,
    );

    // The all-mutable baseline at the smallest scale anchors the latency
    // comparison; by construction (fixed window × constant rate) per-query
    // work does not grow with archive depth.
    let base_n = scales[0];
    let baseline = run_scale(base_n, &spill_dir, false);
    println!(
        "all-mutable baseline @ {}: recent {} ms, range {} ms, count {} ms, knn {} ms, heatmap {} ms, resident {} MB\n",
        fmt_count(base_n as f64),
        baseline.mix.recent.render_ms(),
        baseline.mix.range.render_ms(),
        baseline.mix.count.render_ms(),
        baseline.mix.knn.render_ms(),
        baseline.mix.heatmap.render_ms(),
        baseline.peak_resident / (1 << 20),
    );

    let mut table = Table::new(&[
        "archive",
        "insert Mobs/s",
        "peak resident MB",
        "spilled MB",
        "segments",
        "recent ms",
        "range ms (mean/p50/p95)",
        "count ms",
        "knn16 ms",
        "heatmap ms",
    ]);
    let mut runs: Vec<ScaleRun> = Vec::new();
    for &n in &scales {
        let run = run_scale(n, &spill_dir, true);
        table.row(&[
            fmt_count(n as f64),
            format!("{:.2}", n as f64 / run.insert_s / 1e6),
            format!("{:.1}", run.peak_resident as f64 / (1 << 20) as f64),
            format!("{:.1}", run.spilled_bytes as f64 / (1 << 20) as f64),
            run.sealed_segments.to_string(),
            run.mix.recent.render_ms(),
            run.mix.range.render_ms(),
            run.mix.count.render_ms(),
            run.mix.knn.render_ms(),
            run.mix.heatmap.render_ms(),
        ]);
        runs.push(run);
    }
    table.print();

    let first = &runs[0];
    let last = &runs[runs.len() - 1];
    let growth = last.peak_resident as f64 / first.peak_resident.max(1) as f64;
    let scale_factor = last.n as f64 / first.n as f64;
    let recent_ratio = last.mix.recent.mean / baseline.mix.recent.mean;
    let range_ratio = last.mix.range.mean / baseline.mix.range.mean;
    let count_ratio = last.mix.count.mean / baseline.mix.count.mean;
    let knn_ratio = last.mix.knn.mean / baseline.mix.knn.mean;
    let heat_ratio = last.mix.heatmap.mean / baseline.mix.heatmap.mean;
    println!(
        "\narchive ×{scale_factor:.0} → peak resident ×{growth:.2}; \
         sealed/mutable latency: recent ×{recent_ratio:.2}, range ×{range_ratio:.2}, \
         count ×{count_ratio:.2}, knn ×{knn_ratio:.2}, heatmap ×{heat_ratio:.2}"
    );

    let mut report = Report::new("fig16_archive_scale");
    report.set("rate_obs_per_sec", RATE_OBS_PER_SEC);
    report.set(
        "baseline",
        obj(vec![
            ("archive", Value::from(baseline.n)),
            ("peak_resident_bytes", Value::from(baseline.peak_resident)),
            ("recent_ms_mean", Value::from(baseline.mix.recent.mean * 1e3)),
            ("range_ms_mean", Value::from(baseline.mix.range.mean * 1e3)),
            ("count_ms_mean", Value::from(baseline.mix.count.mean * 1e3)),
            ("knn_ms_mean", Value::from(baseline.mix.knn.mean * 1e3)),
            (
                "heatmap_ms_mean",
                Value::from(baseline.mix.heatmap.mean * 1e3),
            ),
            ("hits", Value::from(baseline.mix.hits)),
        ]),
    );
    report.set(
        "scales",
        runs.iter()
            .map(|r| {
                obj(vec![
                    ("archive", Value::from(r.n)),
                    (
                        "insert_mobs_per_sec",
                        Value::from(r.n as f64 / r.insert_s / 1e6),
                    ),
                    ("peak_resident_bytes", Value::from(r.peak_resident)),
                    ("spilled_bytes", Value::from(r.spilled_bytes)),
                    ("sealed_segments", Value::from(r.sealed_segments)),
                    ("recent_ms_mean", Value::from(r.mix.recent.mean * 1e3)),
                    ("range_ms_mean", Value::from(r.mix.range.mean * 1e3)),
                    ("range_ms_p95", Value::from(r.mix.range.p95 * 1e3)),
                    ("count_ms_mean", Value::from(r.mix.count.mean * 1e3)),
                    ("knn_ms_mean", Value::from(r.mix.knn.mean * 1e3)),
                    ("heatmap_ms_mean", Value::from(r.mix.heatmap.mean * 1e3)),
                    ("hits", Value::from(r.mix.hits)),
                ])
            })
            .collect::<Vec<_>>(),
    );
    report.set("resident_growth", growth);
    report.set("archive_growth", scale_factor);
    report.set("recent_latency_ratio", recent_ratio);
    report.set("range_latency_ratio", range_ratio);
    report.set("count_latency_ratio", count_ratio);
    report.set("knn_latency_ratio", knn_ratio);
    report.set("heatmap_latency_ratio", heat_ratio);
    report.emit();

    let _ = std::fs::remove_dir_all(&spill_dir);

    if assert_gates {
        assert!(
            growth <= 1.5,
            "memory ceiling not flat: peak resident grew ×{growth:.2} over a ×{scale_factor:.0} archive"
        );
        // 0.1 ms of absolute slack keeps timer noise on the microsecond-
        // scale probes (recent / count) from flaking the ratio gates.
        const SLACK_S: f64 = 1e-4;
        for (name, sealed, base) in [
            ("recent", last.mix.recent.mean, baseline.mix.recent.mean),
            ("count", last.mix.count.mean, baseline.mix.count.mean),
            ("knn", last.mix.knn.mean, baseline.mix.knn.mean),
            ("heatmap", last.mix.heatmap.mean, baseline.mix.heatmap.mean),
        ] {
            assert!(
                sealed <= 2.0 * base + SLACK_S,
                "sealed {name} latency ×{:.2} the all-mutable baseline (gate: 2×)",
                sealed / base,
            );
        }
        // Deep materialising range pays full block decode for every
        // matched row — the one decode-bound operation. Guarded against
        // regression at a documented looser bound.
        assert!(
            range_ratio <= 6.0,
            "sealed deep-range latency ×{range_ratio:.2} the all-mutable baseline (gate: 6×)"
        );
        println!(
            "\ngates: resident ×{growth:.2} ≤ 1.5, recent/count/knn/heatmap ratios ≤ 2.0, \
             deep range ×{range_ratio:.2} ≤ 6.0 — ok"
        );
    }
}
