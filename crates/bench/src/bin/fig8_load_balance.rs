//! Figure 8 — load balance under hotspot skew: uniform-hash vs load-aware
//! partitioning.
//!
//! Traffic concentrates around a downtown hotspot with increasing
//! intensity. Uniform partitioning assigns equal cell *counts*, so the
//! hotspot's owner melts; load-aware partitioning splits the Z-order
//! curve by measured per-cell load (here learned from a profiling prefix
//! of the stream, as the deployed system would). Metric: imbalance factor
//! = busiest worker's observations ÷ mean.
//!
//! ```text
//! cargo run -p stcam-bench --release --bin fig8_load_balance
//! ```

use stcam::PartitionPolicy;
use stcam_bench::{ingest_chunked, lan_config, launch, skewed_stream, square_extent, Table};
use stcam_geo::Point;

const EXTENT_M: f64 = 8_000.0;
const WORKERS: usize = 8;
const STREAM_LEN: usize = 200_000;

fn main() {
    let extent = square_extent(EXTENT_M);
    let center = Point::new(EXTENT_M / 2.0, EXTENT_M / 2.0);
    println!(
        "Figure 8: load imbalance vs hotspot intensity ({WORKERS} workers, {STREAM_LEN} observations)\n"
    );
    let mut table = Table::new(&[
        "hotspot fraction",
        "uniform imbalance",
        "load-aware imbalance",
        "improvement",
    ]);

    for fraction in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let stream = skewed_stream(STREAM_LEN, extent, 600, 23, center, 400.0, fraction);
        // Profiling prefix: the first 10% of the stream feeds the load
        // model, exactly as a rebalance epoch would in deployment.
        let profile_len = STREAM_LEN / 10;
        let mut imbalances = Vec::new();
        for policy in [PartitionPolicy::UniformHash, PartitionPolicy::LoadAware] {
            let mut config = lan_config(extent, WORKERS, 0)
                .with_partition_policy(policy)
                .with_macro_cell_size(EXTENT_M / 32.0);
            if policy == PartitionPolicy::LoadAware {
                let grid = config.macro_grid();
                let mut loads = vec![0u64; grid.cell_count() as usize];
                for obs in &stream[..profile_len] {
                    let cell = grid.cell_of_clamped(obs.position);
                    loads[cell.row as usize * grid.cols() as usize + cell.col as usize] += 1;
                }
                config = config.with_load_profile(loads);
            }
            let cluster = launch(config);
            ingest_chunked(&cluster, &stream, 2000);
            let stats = cluster.stats().expect("stats");
            assert_eq!(stats.total_primary() as usize, STREAM_LEN);
            imbalances.push(stats.imbalance());
            cluster.shutdown();
        }
        table.row(&[
            format!("{:.0}%", fraction * 100.0),
            format!("{:.2}", imbalances[0]),
            format!("{:.2}", imbalances[1]),
            format!("{:.1}%", (1.0 - imbalances[1] / imbalances[0]) * 100.0),
        ]);
    }
    table.print();
    println!("\n(imbalance 1.00 = perfect balance; hotspot σ = 400 m at the city centre)");
}
