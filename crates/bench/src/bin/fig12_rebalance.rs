//! Figure 12 (ablation) — online rebalancing under traffic drift.
//!
//! Traffic starts uniform, then a hotspot appears, then it moves across
//! town. After each epoch the coordinator rebalances by measured load and
//! migrates the affected shards. Reported: imbalance before/after each
//! rebalance and the migration bill (cells, observations, bytes). The
//! ablation point: without rebalancing (the "static" column) imbalance
//! compounds across epochs; with it, the cluster returns to ≈1.0 for a
//! bounded, load-proportional migration cost.
//!
//! ```text
//! cargo run -p stcam-bench --release --bin fig12_rebalance
//! ```

use stcam_bench::{
    fmt_count, ingest_chunked, lan_config, launch, skewed_stream, square_extent, synthetic_stream,
    window_secs, Table,
};
use stcam_geo::Point;

const EXTENT_M: f64 = 8_000.0;
const WORKERS: usize = 8;
const EPOCH_LEN: usize = 100_000;

fn main() {
    let extent = square_extent(EXTENT_M);
    println!(
        "Figure 12 (ablation): online rebalancing under traffic drift ({WORKERS} workers, {} obs/epoch)\n",
        fmt_count(EPOCH_LEN as f64)
    );
    let epochs = [
        ("uniform", synthetic_stream(EPOCH_LEN, extent, 600, 71)),
        (
            "hotspot SW",
            skewed_stream(
                EPOCH_LEN,
                extent,
                600,
                72,
                Point::new(1500.0, 1500.0),
                400.0,
                0.7,
            ),
        ),
        (
            "hotspot NE",
            skewed_stream(
                EPOCH_LEN,
                extent,
                600,
                73,
                Point::new(6500.0, 6500.0),
                400.0,
                0.7,
            ),
        ),
    ];

    // Static cluster (never rebalances) for the ablation column.
    let static_cluster = launch(lan_config(extent, WORKERS, 0));
    let adaptive = launch(lan_config(extent, WORKERS, 0).with_macro_cell_size(EXTENT_M / 32.0));

    let mut table = Table::new(&[
        "epoch",
        "static imbalance",
        "adaptive before",
        "adaptive after",
        "cells moved",
        "obs moved",
        "MB moved",
    ]);

    for (label, stream) in &epochs {
        for cluster in [&static_cluster, &adaptive] {
            ingest_chunked(cluster, stream, 2000);
        }
        let static_imbalance = static_cluster.stats().expect("stats").imbalance();
        let traffic_before = adaptive.fabric_stats().total_bytes;
        let report = adaptive.rebalance().expect("rebalance");
        let moved_mb =
            (adaptive.fabric_stats().total_bytes - traffic_before) as f64 / (1024.0 * 1024.0);
        table.row(&[
            label.to_string(),
            format!("{static_imbalance:.2}"),
            format!("{:.2}", report.imbalance_before),
            format!("{:.2}", report.imbalance_after),
            report.cells_moved.to_string(),
            fmt_count(report.observations_moved as f64),
            format!("{moved_mb:.1}"),
        ]);
    }
    table.print();
    // Sanity: nothing lost across three epochs of migration.
    let held = adaptive
        .range_query(extent, window_secs(10_000))
        .expect("audit")
        .len();
    println!(
        "\naudit: adaptive cluster holds {held} of {} ingested observations",
        3 * EPOCH_LEN
    );
    assert_eq!(
        held,
        3 * EPOCH_LEN,
        "rebalance migrations must conserve every observation"
    );
    static_cluster.shutdown();
    adaptive.shutdown();
}
