//! Figure 14 — concurrent query clients vs. throughput.
//!
//! The headline number for the lock-free query plane: N client threads
//! issue a fixed mixed read workload (range / pruned kNN / heat-map)
//! against one shared cluster, and we report aggregate throughput as N
//! sweeps 1 → 16. Before the query plane, every read serialised on the
//! coordinator's mutex and a single fabric endpoint, so adding client
//! threads bought nothing; with epoch-published plans and the pooled
//! endpoints, throughput must scale — the run asserts ≥ 3× at 8
//! threads — and per-operation telemetry must still account for every
//! invocation issued by every thread, exactly once.
//!
//! The metro link model (2 ms base latency between camera aggregation
//! sites) makes each query latency-dominated, which is the regime the
//! concurrency win targets: overlapping round trips, not multiplying
//! CPU. On a many-core host the sweep additionally overlaps worker
//! compute; the gate only assumes latency overlap, so it holds on a
//! single-core CI runner too.
//!
//! ```text
//! cargo run -p stcam-bench --release --bin fig14_concurrent_clients
//! ```
//!
//! Environment knobs (for CI smoke runs):
//! `FIG14_ARCHIVE` (default 20000), `FIG14_OPS` (per-thread op count,
//! default 40), `FIG14_MAX_THREADS` (default 16), and
//! `FIG14_NO_ASSERT=1` to report without the scaling gate.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stcam::{Cluster, QueryMode};
use stcam_bench::report::{obj, Report, Value};
use stcam_bench::{
    fmt_count, ingest_chunked, launch, op_stats, square_extent, synthetic_stream, timed,
    window_secs, Table,
};
use stcam_geo::{BBox, GridSpec, Point};
use stcam_net::LinkModel;

const EXTENT_M: f64 = 8_000.0;
const WORKERS: usize = 8;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The per-thread workload: `ops` queries cycling range → kNN →
/// heat-map, deterministic per thread index. Returns per-kind counts.
fn client(cluster: &Cluster, thread: usize, ops: usize, issued: &[AtomicU64; 3]) {
    let window = window_secs(600);
    let buckets = GridSpec::covering(square_extent(EXTENT_M), EXTENT_M / 64.0);
    let mut rng = StdRng::seed_from_u64(1000 + thread as u64);
    for i in 0..ops {
        let p = Point::new(rng.gen_range(0.0..EXTENT_M), rng.gen_range(0.0..EXTENT_M));
        match i % 3 {
            0 => {
                cluster
                    .range_query_with(QueryMode::Strict, BBox::around(p, 250.0), window)
                    .expect("range");
                issued[0].fetch_add(1, Ordering::Relaxed);
            }
            1 => {
                cluster
                    .knn_query_with(QueryMode::Strict, p, window, 16)
                    .expect("knn");
                issued[1].fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                cluster
                    .heatmap_with(QueryMode::Strict, &buckets, window)
                    .expect("heatmap");
                issued[2].fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn main() {
    let archive = env_usize("FIG14_ARCHIVE", 20_000);
    let ops = env_usize("FIG14_OPS", 40);
    let max_threads = env_usize("FIG14_MAX_THREADS", 16).max(1);
    let gate = std::env::var("FIG14_NO_ASSERT").map_or(true, |v| v != "1");

    let extent = square_extent(EXTENT_M);
    let cluster = launch(
        stcam::ClusterConfig::new(extent, WORKERS)
            .with_replication(1)
            .with_link(LinkModel::metro()),
    );
    let stream = synthetic_stream(archive, extent, 600, 41);
    ingest_chunked(&cluster, &stream, 1_000);

    println!(
        "Figure 14: concurrent query clients ({WORKERS} workers, {} archive, {ops} mixed ops/thread)\n",
        fmt_count(archive as f64)
    );

    let mut table = Table::new(&["threads", "ops", "wall s", "ops/s", "speedup"]);
    let mut rows: Vec<Value> = Vec::new();
    let mut baseline_ops_s = 0.0;
    let sweep: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= max_threads)
        .collect();
    let mut speedup_at = std::collections::BTreeMap::new();

    for &threads in &sweep {
        let issued: [AtomicU64; 3] = Default::default();
        let before = [
            op_stats(&cluster, "range"),
            op_stats(&cluster, "knn_phase1"),
            op_stats(&cluster, "heatmap"),
        ];
        let ((), wall) = timed(|| {
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let (cluster, issued) = (&cluster, &issued);
                    scope.spawn(move || client(cluster, t, ops, issued));
                }
            });
        });
        // Telemetry must add up exactly: every thread's every query is
        // booked once in the shared account, no lost updates, no
        // cross-attribution.
        let deltas = [
            op_stats(&cluster, "range").since(&before[0]),
            op_stats(&cluster, "knn_phase1").since(&before[1]),
            op_stats(&cluster, "heatmap").since(&before[2]),
        ];
        for (kind, (d, issued)) in ["range", "knn_phase1", "heatmap"]
            .iter()
            .zip(deltas.iter().zip(&issued))
        {
            assert_eq!(
                d.invocations,
                issued.load(Ordering::Relaxed),
                "telemetry lost {kind} invocations at {threads} threads"
            );
            assert_eq!(d.failures, 0, "{kind} failures at {threads} threads");
        }
        let total_ops = (threads * ops) as f64;
        let ops_s = total_ops / wall;
        if threads == 1 {
            baseline_ops_s = ops_s;
        }
        let speedup = ops_s / baseline_ops_s;
        speedup_at.insert(threads, speedup);
        table.row(&[
            format!("{threads}"),
            format!("{total_ops:.0}"),
            format!("{wall:.2}"),
            format!("{ops_s:.0}"),
            format!("{speedup:.2}x"),
        ]);
        rows.push(obj(vec![
            ("threads", Value::from(threads)),
            ("ops", Value::from(threads * ops)),
            ("wall_s", Value::from(wall)),
            ("ops_per_s", Value::from(ops_s)),
            ("speedup_vs_1", Value::from(speedup)),
        ]));
    }
    table.print();
    println!(
        "\n(shared cluster, metro link model; speedup is aggregate ops/s vs the\n\
         single-client run — the pre-query-plane architecture pinned this at ~1x)"
    );

    let mut report = Report::new("fig14_concurrent_clients");
    report
        .set("workers", WORKERS)
        .set("archive", archive)
        .set("ops_per_thread", ops)
        .set("rows", rows);
    if let Some(&s8) = speedup_at.get(&8) {
        report.set("speedup_at_8", s8);
    }
    report.emit();
    cluster.shutdown();

    if gate {
        if let Some(&s8) = speedup_at.get(&8) {
            assert!(
                s8 >= 3.0,
                "query plane scaling regression: {s8:.2}x at 8 threads (< 3x)"
            );
            println!("scaling gate passed: {s8:.2}x at 8 threads (>= 3x)");
        }
    }
}
