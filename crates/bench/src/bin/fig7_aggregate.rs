//! Figure 7 — aggregate (heat-map) queries: worker-side partial
//! aggregation vs shipping all matches to the coordinator.
//!
//! Both strategies produce identical bucket counts; partial aggregation
//! moves one counts vector per worker instead of every matching
//! observation, so its traffic is (near-)independent of the data volume
//! while ship-all grows linearly with it.
//!
//! ```text
//! cargo run -p stcam-bench --release --bin fig7_aggregate
//! ```

use stcam_bench::{
    fmt_count, ingest_chunked, lan_config, launch, square_extent, synthetic_stream, timed,
    window_secs, Table,
};
use stcam_geo::GridSpec;

const EXTENT_M: f64 = 8_000.0;
const WORKERS: usize = 8;
const REPEATS: usize = 10;

fn main() {
    let extent = square_extent(EXTENT_M);
    println!(
        "Figure 7: heat-map aggregation, partial vs ship-all ({WORKERS} workers, 64×64 buckets)\n"
    );
    let buckets = GridSpec::covering(extent, EXTENT_M / 64.0);
    let window = window_secs(600);
    let mut table = Table::new(&[
        "archive",
        "partial ms",
        "partial KB/q",
        "ship-all ms",
        "ship-all KB/q",
        "traffic ratio",
    ]);

    for archive in [100_000usize, 400_000, 1_600_000] {
        let cluster = launch(lan_config(extent, WORKERS, 0));
        let stream = synthetic_stream(archive, extent, 600, 17);
        ingest_chunked(&cluster, &stream, 2000);

        let before = cluster.fabric_stats();
        let (partial_result, partial_s) = timed(|| {
            let mut last = Vec::new();
            for _ in 0..REPEATS {
                last = cluster.heatmap(&buckets, window).expect("heatmap");
            }
            last
        });
        let mid = cluster.fabric_stats();
        let (shipall_result, shipall_s) = timed(|| {
            let mut last = Vec::new();
            for _ in 0..REPEATS {
                last = cluster.heatmap_ship_all(&buckets, window).expect("heatmap");
            }
            last
        });
        let after = cluster.fabric_stats();
        assert_eq!(partial_result, shipall_result, "strategies disagree");

        let partial_kb = mid.since(&before).total_bytes as f64 / 1024.0 / REPEATS as f64;
        let shipall_kb = after.since(&mid).total_bytes as f64 / 1024.0 / REPEATS as f64;
        table.row(&[
            fmt_count(archive as f64),
            format!("{:.2}", partial_s * 1e3 / REPEATS as f64),
            format!("{partial_kb:.1}"),
            format!("{:.2}", shipall_s * 1e3 / REPEATS as f64),
            format!("{shipall_kb:.1}"),
            format!("{:.0}x", shipall_kb / partial_kb),
        ]);
        cluster.shutdown();
    }
    table.print();
}
