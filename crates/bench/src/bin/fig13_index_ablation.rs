//! Figure 13 (ablation) — local index parameters: spatial cell size ×
//! temporal slice length × storage tier.
//!
//! The worker index's two knobs trade insert cost against query cost:
//! finer cells mean more buckets to manage but tighter range scans;
//! shorter slices mean finer retention/temporal pruning but more slice
//! structures. This sweep justifies the framework defaults (cell ≈
//! extent/80, slice 10 s) on the standard archive.
//!
//! Each configuration is measured twice — all-mutable and with closed
//! slices sealed into immutable columnar segments — so the table doubles
//! as the sealed-store ablation: what sealing costs (decode on
//! materialising scans) and what it buys (footer-resolved counts,
//! compressed residency) across the parameter grid.
//!
//! ```text
//! cargo run -p stcam-bench --release --bin fig13_index_ablation
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stcam_bench::report::{obj, Report, Value};
use stcam_bench::{square_extent, synthetic_stream, timed, window_secs, Table};
use stcam_geo::{BBox, Duration, Point, TimeInterval, Timestamp};
use stcam_index::{IndexConfig, StIndex};

const EXTENT_M: f64 = 8_000.0;
const ARCHIVE: usize = 500_000;
const QUERIES: usize = 200;

/// Per-tier measurements of one (cell, slice) configuration.
struct TierRun {
    insert_mobs: f64,
    range_ms: f64,
    trange_ms: f64,
    knn_ms: f64,
    resident_mb: f64,
}

fn measure(config: IndexConfig, stream: &[stcam_camnet::Observation], seed: u64) -> TierRun {
    let (index, insert_s) = timed(|| {
        let mut index = StIndex::new(config);
        index.insert_batch(stream.iter().cloned());
        index
    });

    let mut rng = StdRng::seed_from_u64(seed);
    let points: Vec<Point> = (0..QUERIES)
        .map(|_| Point::new(rng.gen_range(0.0..EXTENT_M), rng.gen_range(0.0..EXTENT_M)))
        .collect();
    let full_window = window_secs(600);

    let (_, range_s) = timed(|| {
        let mut total = 0usize;
        for &p in &points {
            total += index.range(BBox::around(p, 250.0), full_window).len();
        }
        total
    });
    // Temporally selective query: a 30 s window over a wide area
    // exercises slice pruning (and, sealed, footer counting).
    let (_, trange_s) = timed(|| {
        let mut total = 0usize;
        for (i, &p) in points.iter().enumerate() {
            let t0 = (i as u64 * 17) % 570;
            let window =
                TimeInterval::new(Timestamp::from_secs(t0), Timestamp::from_secs(t0 + 30));
            total += index.range_count(BBox::around(p, 1000.0), window);
        }
        total
    });
    let (_, knn_s) = timed(|| {
        let mut total = 0usize;
        for &p in &points {
            total += index.knn(p, full_window, 16).len();
        }
        total
    });
    TierRun {
        insert_mobs: ARCHIVE as f64 / insert_s / 1e6,
        range_ms: range_s * 1e3 / QUERIES as f64,
        trange_ms: trange_s * 1e3 / QUERIES as f64,
        knn_ms: knn_s * 1e3 / QUERIES as f64,
        resident_mb: index.stats().resident_bytes as f64 / (1 << 20) as f64,
    }
}

fn main() {
    let extent = square_extent(EXTENT_M);
    let mut stream = synthetic_stream(ARCHIVE, extent, 600, 83);
    // Live ingest delivers observations in arrival ≈ timestamp order;
    // slice-close events (which drive sealing) depend on it.
    stream.sort_by_key(|o| o.time);
    println!(
        "Figure 13 (ablation): index cell size × slice length × tier (500k archive)\n\
         each latency cell: all-mutable / sealed-segment store\n"
    );
    let mut table = Table::new(&[
        "cell m",
        "slice s",
        "insert Mobs/s",
        "range 500 m ms",
        "count 30 s ms",
        "knn16 ms",
        "resident MB",
    ]);

    let mut report = Report::new("fig13_index_ablation");
    report.set("archive", ARCHIVE);
    report.set("queries", QUERIES);
    let mut rows: Vec<Value> = Vec::new();
    for cell_size in [25.0f64, 100.0, 400.0, 1600.0] {
        for slice_secs in [1u64, 10, 100] {
            let seed = (cell_size as u64) ^ slice_secs;
            let config = IndexConfig::new(extent, cell_size, Duration::from_secs(slice_secs));
            let mutable = measure(config.clone().without_sealing(), &stream, seed);
            let sealed = measure(config, &stream, seed);
            table.row(&[
                format!("{cell_size:.0}"),
                slice_secs.to_string(),
                format!("{:.2}/{:.2}", mutable.insert_mobs, sealed.insert_mobs),
                format!("{:.3}/{:.3}", mutable.range_ms, sealed.range_ms),
                format!("{:.3}/{:.3}", mutable.trange_ms, sealed.trange_ms),
                format!("{:.3}/{:.3}", mutable.knn_ms, sealed.knn_ms),
                format!("{:.1}/{:.1}", mutable.resident_mb, sealed.resident_mb),
            ]);
            let tier = |r: &TierRun| {
                obj(vec![
                    ("insert_mobs_per_sec", Value::from(r.insert_mobs)),
                    ("range_ms", Value::from(r.range_ms)),
                    ("count_30s_ms", Value::from(r.trange_ms)),
                    ("knn_ms", Value::from(r.knn_ms)),
                    ("resident_mb", Value::from(r.resident_mb)),
                ])
            };
            rows.push(obj(vec![
                ("cell_m", Value::from(cell_size)),
                ("slice_secs", Value::from(slice_secs)),
                ("mutable", tier(&mutable)),
                ("sealed", tier(&sealed)),
            ]));
        }
    }
    table.print();
    report.set("rows", rows);
    report.emit();
    println!("\n(framework default: cell = extent/80 = 100 m, slice = 10 s)");
}
