//! Figure 13 (ablation) — local index parameters: spatial cell size ×
//! temporal slice length.
//!
//! The worker index's two knobs trade insert cost against query cost:
//! finer cells mean more buckets to manage but tighter range scans;
//! shorter slices mean finer retention/temporal pruning but more slice
//! structures. This sweep justifies the framework defaults (cell ≈
//! extent/80, slice 10 s) on the standard archive.
//!
//! ```text
//! cargo run -p stcam-bench --release --bin fig13_index_ablation
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stcam_bench::{square_extent, synthetic_stream, timed, window_secs, Table};
use stcam_geo::{BBox, Duration, Point, TimeInterval, Timestamp};
use stcam_index::{IndexConfig, StIndex};

const EXTENT_M: f64 = 8_000.0;
const ARCHIVE: usize = 500_000;
const QUERIES: usize = 200;

fn main() {
    let extent = square_extent(EXTENT_M);
    let stream = synthetic_stream(ARCHIVE, extent, 600, 83);
    println!("Figure 13 (ablation): index cell size × slice length (500k archive)\n");
    let mut table = Table::new(&[
        "cell m",
        "slice s",
        "insert Mobs/s",
        "range 500 m ms",
        "range 30 s window ms",
        "knn16 ms",
        "slices",
    ]);

    for cell_size in [25.0f64, 100.0, 400.0, 1600.0] {
        for slice_secs in [1u64, 10, 100] {
            let config = IndexConfig::new(extent, cell_size, Duration::from_secs(slice_secs));
            let (index, insert_s) = timed(|| {
                let mut index = StIndex::new(config.clone());
                index.insert_batch(stream.iter().cloned());
                index
            });

            let mut rng = StdRng::seed_from_u64((cell_size as u64) ^ slice_secs);
            let points: Vec<Point> = (0..QUERIES)
                .map(|_| Point::new(rng.gen_range(0.0..EXTENT_M), rng.gen_range(0.0..EXTENT_M)))
                .collect();
            let full_window = window_secs(600);

            let (_, range_s) = timed(|| {
                let mut total = 0usize;
                for &p in &points {
                    total += index.range(BBox::around(p, 250.0), full_window).len();
                }
                total
            });
            // Temporally selective query: a 30 s window over the full area
            // exercises slice pruning.
            let (_, trange_s) = timed(|| {
                let mut total = 0usize;
                for (i, &p) in points.iter().enumerate() {
                    let t0 = (i as u64 * 17) % 570;
                    let window =
                        TimeInterval::new(Timestamp::from_secs(t0), Timestamp::from_secs(t0 + 30));
                    total += index.range_count(BBox::around(p, 1000.0), window);
                }
                total
            });
            let (_, knn_s) = timed(|| {
                let mut total = 0usize;
                for &p in &points {
                    total += index.knn(p, full_window, 16).len();
                }
                total
            });
            table.row(&[
                format!("{cell_size:.0}"),
                slice_secs.to_string(),
                format!("{:.2}", ARCHIVE as f64 / insert_s / 1e6),
                format!("{:.3}", range_s * 1e3 / QUERIES as f64),
                format!("{:.3}", trange_s * 1e3 / QUERIES as f64),
                format!("{:.3}", knn_s * 1e3 / QUERIES as f64),
                index.stats().slices.to_string(),
            ]);
        }
    }
    table.print();
    println!("\n(framework default: cell = extent/80 = 100 m, slice = 10 s)");
}
