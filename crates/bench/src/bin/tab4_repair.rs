//! Table 4 — self-healing replication: time-to-full-replication and
//! repair traffic after a worker loss, with and without message loss.
//!
//! For each replication factor, stream a workload, kill one worker, and
//! let the control plane heal itself: detection + replica promotion
//! first (`check_and_recover`, which ends with an anti-entropy pass),
//! then further digest-sweep/stream rounds until the repair planner
//! reports convergence — every cell an alive owner holds mirrored at its
//! required ring successors. The dead worker is then restarted and the
//! rejoin handshake readmits it (bulk-sync, epoch-stamped routes, one
//! atomic plan re-entry), after which repair must converge again. The
//! lossy columns repeat the whole cycle with a uniform drop probability
//! on every link — dropped digests, copies, and repair chunks surface as
//! timeouts and are retried or re-planned on the next round.
//!
//! Expected shape: time-to-full-replication is dominated by streaming
//! the dead worker's share of the keyspace (~r/N of the stream) and
//! grows modestly with the drop rate; repair bytes track the streamed
//! share and are loss-rate-insensitive (only lost chunks re-send). The
//! gate asserts the converges-to-zero invariant: after healing, zero
//! under-replicated cells and a strict full-range query returning the
//! entire stream — at every replication factor and drop rate.
//!
//! ```text
//! cargo run -p stcam-bench --release --bin tab4_repair
//! ```
//!
//! Environment knobs (for CI smoke runs): `TAB4_STREAM` (default
//! 20000), `TAB4_CHUNK` (ingest batch size, default 1000), and
//! `TAB4_NO_ASSERT=1` to report without the convergence gate.

use stcam::{Cluster, OpPolicy};
use stcam_bench::report::{obj, Report, Value};
use stcam_bench::{
    fmt_count, ingest_chunked, lan_config, launch, op_stats, square_extent, synthetic_stream,
    timed, window_secs, Table,
};
use stcam_net::NodeId;

const EXTENT_M: f64 = 8_000.0;
const WORKERS: usize = 8;
const VICTIM: NodeId = NodeId(3);

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let stream_len = env_usize("TAB4_STREAM", 20_000);
    let chunk = env_usize("TAB4_CHUNK", 1_000);
    let gate = std::env::var("TAB4_NO_ASSERT").map_or(true, |v| v != "1");

    let extent = square_extent(EXTENT_M);
    println!(
        "Table 4: repair and rejoin after a worker loss ({WORKERS} workers, {} observations)\n",
        fmt_count(stream_len as f64)
    );
    let mut table = Table::new(&[
        "r",
        "drop",
        "under-repl at kill",
        "heal s",
        "repair rounds",
        "repair KiB",
        "rejoin s",
        "under-repl after",
        "lost",
    ]);
    let mut rows: Vec<Value> = Vec::new();

    for replication in [2usize, 3] {
        for drop in [0.0f64, 0.05] {
            // A lost message only surfaces as an RPC timeout; on the
            // modelled LAN 100 ms is still generous headroom. Probes are
            // single-attempt by default (a timeout *is* the liveness
            // signal), but under deliberate loss one dropped probe must
            // not fail a live worker out of the ring — give them retries.
            let cluster = launch(
                lan_config(extent, WORKERS, replication)
                    .with_rpc_timeout(std::time::Duration::from_millis(100)),
            );
            cluster.set_op_policy(
                "probe",
                OpPolicy {
                    timeout: std::time::Duration::from_millis(250),
                    max_attempts: 4,
                    backoff: std::time::Duration::from_millis(10),
                },
            );
            let mut stream = synthetic_stream(stream_len, extent, 600, 71);
            // Live ingest delivers in arrival ≈ timestamp order; worker
            // slice-close events (which seal segments — the unit the
            // rejoin bulk-sync ships) depend on it.
            stream.sort_by_key(|o| o.time);
            ingest_chunked(&cluster, &stream, chunk);

            cluster.kill_worker(VICTIM);
            cluster.set_drop_probability(drop);
            let under_at_kill = cluster.under_replicated_cells();

            // Heal: detection + promotion + anti-entropy until the
            // planner reports convergence. check_and_recover ends with
            // one repair pass; lossy rounds may need more.
            let (_, heal_s) = timed(|| {
                let failed = cluster.check_and_recover();
                assert_eq!(failed, vec![VICTIM], "missed the failure");
                drive_to_convergence(&cluster, "post-failover repair");
            });
            let repair = op_stats(&cluster, "repair");

            // Rejoin: restart the dead worker and let recovery readmit
            // it. Under loss a dropped probe looks exactly like a
            // still-dead worker, so the tick may need repeating.
            cluster.restart_worker(VICTIM);
            let (_, rejoin_s) = timed(|| {
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
                loop {
                    cluster.check_and_recover();
                    if !cluster.partition().cells_of(VICTIM).is_empty() {
                        break;
                    }
                    assert!(
                        std::time::Instant::now() < deadline,
                        "restarted worker never rejoined at drop={drop}"
                    );
                }
                drive_to_convergence(&cluster, "post-rejoin repair");
            });

            // Audit with the links healthy again: the convergence gate.
            cluster.set_drop_probability(0.0);
            let under_after = cluster.under_replicated_cells();
            let held = cluster
                .range_query(extent.inflated(100.0), window_secs(10_000))
                .expect("strict audit after heal")
                .len();
            let lost = stream_len.saturating_sub(held);

            table.row(&[
                replication.to_string(),
                format!("{:.0}%", drop * 100.0),
                under_at_kill.to_string(),
                format!("{heal_s:.2}"),
                repair.repair_rounds.to_string(),
                format!("{:.0}", repair.repair_bytes as f64 / 1024.0),
                format!("{rejoin_s:.2}"),
                under_after.to_string(),
                lost.to_string(),
            ]);
            rows.push(obj(vec![
                ("replication", Value::from(replication)),
                ("drop", Value::from(drop)),
                ("under_replicated_at_kill", Value::from(under_at_kill)),
                ("heal_s", Value::from(heal_s)),
                ("repair_rounds", Value::from(repair.repair_rounds)),
                ("repair_bytes", Value::from(repair.repair_bytes)),
                ("rejoin_s", Value::from(rejoin_s)),
                ("under_replicated_after", Value::from(under_after)),
                ("lost", Value::from(lost)),
            ]));

            if gate {
                assert_eq!(
                    under_after, 0,
                    "repair did not converge to zero at r={replication} drop={drop}"
                );
                assert_eq!(
                    lost, 0,
                    "data lost through kill/heal/rejoin at r={replication} drop={drop}"
                );
            }
            cluster.shutdown();
        }
    }
    table.print();
    println!(
        "\n(`heal s` spans detection, replica promotion, and anti-entropy repair to\n\
         convergence; `rejoin s` spans re-detection of the restarted worker through\n\
         bulk-sync and repair; the gate is zero under-replicated cells and a strict\n\
         full-range audit equal to the stream, at every factor and drop rate)"
    );

    let mut report = Report::new("tab4_repair");
    report
        .set("workers", WORKERS)
        .set("stream", stream_len)
        .set("rows", rows);
    report.emit();
    if gate {
        println!("convergence gate passed: zero under-replicated cells, zero loss");
    }
}

/// Re-invokes [`Cluster::repair`] until the planner reports convergence
/// (each invocation is budget-bounded; under loss a round's worth of
/// streams can fail and be re-planned).
fn drive_to_convergence(cluster: &Cluster, what: &str) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    while !cluster.repair().converged {
        assert!(
            std::time::Instant::now() < deadline,
            "{what} never converged"
        );
    }
}
