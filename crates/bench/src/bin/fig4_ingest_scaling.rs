//! Figure 4 — ingest throughput vs worker count, against the centralized
//! baseline.
//!
//! The stream arrives through four parallel edge ingestors (camera
//! aggregation points holding the partition map), mirroring a real
//! deployment where the coordinator is not on the ingest path.
//!
//! **Metric.** This harness may run on a host with fewer cores than the
//! modelled cluster has machines, where wall-clock cannot show parallel
//! speedup. The primary metric is therefore the *critical path*: the
//! busiest shard's measured busy time, which is what bounds sustained
//! throughput when every worker is its own machine. Wall-clock time is
//! reported alongside for transparency.
//!
//! Expected shape: the busiest shard's busy time falls roughly linearly
//! with worker count (shards shrink), so critical-path throughput rises
//! near-linearly and overtakes the single-node baseline immediately.
//!
//! ```text
//! cargo run -p stcam-bench --release --bin fig4_ingest_scaling
//! ```

use stcam::CentralizedStore;
use stcam_bench::{
    fmt_count, lan_config, launch, max_shard_busy_secs, square_extent, synthetic_stream, timed,
    Table,
};
use stcam_geo::Duration;
use stcam_index::IndexConfig;

const STREAM_LEN: usize = 400_000;
const BATCH: usize = 500;
const SOURCES: usize = 4;
const EXTENT_M: f64 = 8_000.0;

fn main() {
    let extent = square_extent(EXTENT_M);
    let stream = synthetic_stream(STREAM_LEN, extent, 600, 7);
    println!(
        "Figure 4: ingest throughput vs workers ({} observations, {SOURCES} edge sources, batches of {BATCH})\n",
        fmt_count(STREAM_LEN as f64)
    );
    let mut table = Table::new(&[
        "system",
        "workers",
        "wall s",
        "max-shard busy s",
        "critical-path obs/s",
        "scale-up",
    ]);

    // Centralized baseline: same index, no network, one thread. Its busy
    // time IS its wall time.
    let index_config = IndexConfig::new(extent, 100.0, Duration::from_secs(10));
    let (_, base_busy) = timed(|| {
        let mut store = CentralizedStore::indexed(index_config.clone());
        for chunk in stream.chunks(BATCH) {
            store.ingest(chunk.to_vec());
        }
        store
    });
    table.row(&[
        "centralized".into(),
        "1".into(),
        format!("{base_busy:.2}"),
        format!("{base_busy:.2}"),
        fmt_count(STREAM_LEN as f64 / base_busy),
        "1.00x".into(),
    ]);

    // Split the stream across the edge sources once, up front.
    let shares: Vec<Vec<_>> = (0..SOURCES)
        .map(|s| stream.iter().skip(s).step_by(SOURCES).cloned().collect())
        .collect();

    for workers in [1usize, 2, 4, 8, 16] {
        let cluster = launch(lan_config(extent, workers, 0));
        let ingestors: Vec<_> = (0..SOURCES).map(|_| cluster.create_ingestor()).collect();
        let (_, wall) = timed(|| {
            std::thread::scope(|scope| {
                for (ingestor, share) in ingestors.iter().zip(&shares) {
                    scope.spawn(move || {
                        for chunk in share.chunks(BATCH) {
                            ingestor.ingest(chunk.to_vec()).expect("ingest");
                        }
                        ingestor.flush().expect("flush");
                    });
                }
            });
        });
        let stats = cluster.stats().expect("stats");
        assert_eq!(
            stats.total_primary(),
            STREAM_LEN as u64,
            "observations lost"
        );
        let max_busy = max_shard_busy_secs(&stats);
        let critical_rate = STREAM_LEN as f64 / max_busy.max(1e-9);
        table.row(&[
            "distributed".into(),
            workers.to_string(),
            format!("{wall:.2}"),
            format!("{max_busy:.2}"),
            fmt_count(critical_rate),
            format!("{:.2}x", critical_rate / (STREAM_LEN as f64 / base_busy)),
        ]);
        cluster.shutdown();
    }
    table.print();
    println!(
        "\nnotes: critical path = busiest shard's busy time (the throughput bound when\n\
         each worker is its own machine); wall-clock on this host is core-limited.\n\
         replication 0; see tab3_recovery for the replication cost."
    );
}
