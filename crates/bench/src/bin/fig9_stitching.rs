//! Figure 9 — trajectory stitching accuracy vs appearance noise:
//! topology-gated hand-off vs the appearance-only greedy baseline.
//!
//! A dense city (400 entities) streamed for two simulated minutes; the
//! detector's signature noise σ sweeps from near-clean to severe. Scores
//! are link-level precision/recall/F1 against ground truth. Expected
//! shape: both methods are accurate at low noise; as appearance becomes
//! ambiguous the greedy baseline's precision collapses (it links
//! look-alikes across physically impossible hops) while the hand-off
//! method's camera-adjacency and transition-time gates hold precision
//! high, at some recall cost.
//!
//! ```text
//! cargo run -p stcam-bench --release --bin fig9_stitching
//! ```

use stcam::stitch::{build_tracklets, score_links, stitch_greedy, stitch_handoff, StitchConfig};
use stcam_bench::Table;
use stcam_camnet::TransitionModel;
use stcam_geo::Duration;

fn main() {
    println!(
        "Figure 9: stitching accuracy vs signature noise (400 entities, 120 s, 200 cameras)\n"
    );
    let mut table = Table::new(&[
        "σ",
        "tracklets",
        "handoff P",
        "handoff R",
        "handoff F1",
        "greedy P",
        "greedy R",
        "greedy F1",
    ]);

    for sigma in [0.05f32, 0.15, 0.25, 0.35, 0.45] {
        // Regenerate the stream at each noise level (same world seed, so
        // the underlying motion is identical; only the detector varies).
        let stream = rebuild_with_sigma(sigma);
        let config = StitchConfig {
            handoff_sig_threshold: (0.45 + 2.0 * sigma).min(1.2),
            ..StitchConfig::default()
        };
        let tracklets = build_tracklets(&stream.observations, &config);
        let transitions = TransitionModel::from_network(&stream.network, stream.world.roads());
        let handoff = stitch_handoff(&tracklets, &stream.network, &transitions, &config);
        let greedy = stitch_greedy(&tracklets, &config, Duration::from_secs(120));
        let h = score_links(&tracklets, &handoff);
        let g = score_links(&tracklets, &greedy);
        table.row(&[
            format!("{sigma:.2}"),
            tracklets.len().to_string(),
            format!("{:.3}", h.precision()),
            format!("{:.3}", h.recall()),
            format!("{:.3}", h.f1()),
            format!("{:.3}", g.precision()),
            format!("{:.3}", g.recall()),
            format!("{:.3}", g.f1()),
        ]);
    }
    table.print();
    println!("\n(hand-off threshold adapts to σ as 0.45 + 2σ, capped at 1.2, for both methods)");
}

fn rebuild_with_sigma(sigma: f32) -> stcam_bench::CityStream {
    use stcam_camnet::{CameraNetwork, DetectionModel, SensorSim};
    use stcam_geo::Timestamp;
    use stcam_world::{MobilityModel, Placement, World, WorldConfig};

    let config = WorldConfig {
        extent: stcam_bench::square_extent(4_000.0),
        road_spacing: 200.0,
        class_counts: [0; 4],
        mobility: MobilityModel::Trip,
        placement: Placement::Uniform,
        record_interval: Duration::from_secs(1),
        churn_per_minute: 0.0,
        seed: 31,
    }
    .with_total_entities(400);
    let mut world = World::new(config);
    let network = CameraNetwork::deploy_on_roads(world.roads(), 200, 32);
    let model = DetectionModel::default().with_signature_sigma(sigma);
    let mut sim = SensorSim::new(network, model, 33);
    let mut observations = Vec::new();
    while world.now() < Timestamp::from_secs(120) {
        observations.extend(sim.observe(&world));
        world.step(Duration::from_millis(500));
    }
    let network = CameraNetwork::deploy_on_roads(world.roads(), 200, 32);
    stcam_bench::CityStream {
        observations,
        world,
        network,
    }
}
