//! Table 3 — fault tolerance: data loss and recovery time vs replication
//! factor.
//!
//! For each replication factor, stream a workload, kill one worker (and,
//! in the paired column, two ring-adjacent workers) mid-archive, probe
//! availability during the crash window, run detection + failover, and
//! audit completeness. Expected shape: r = 0 loses the whole dead shard
//! (~1/N of the data); r = 1 survives one failure with zero loss — the
//! acked write path replicates synchronously before acknowledging —
//! and r = 2 survives two adjacent failures.
//! Recovery time is dominated by replica-log promotion, proportional to
//! the dead shard's size. Failure detection itself is visible in the
//! executor's telemetry: each dead worker shows up as exactly one failed
//! (deliberately non-retried) probe.
//!
//! The availability columns measure the window between the crash and the
//! recovery tick — when the dead workers are still in the ring and only
//! replica-failover reads can answer for their shards: the fraction of
//! strict queries answered, and the mean completeness fraction of
//! best-effort queries.
//!
//! ```text
//! cargo run -p stcam-bench --release --bin tab3_recovery
//! ```

use stcam::{Cluster, OpPolicy, QueryMode};
use stcam_bench::{
    fmt_count, ingest_chunked, lan_config, launch, op_stats, square_extent, synthetic_stream,
    timed, window_secs, Table,
};
use stcam_geo::{BBox, GridSpec, Point};
use stcam_net::NodeId;

const EXTENT_M: f64 = 8_000.0;
const WORKERS: usize = 8;
const STREAM_LEN: usize = 200_000;

fn main() {
    let extent = square_extent(EXTENT_M);
    println!(
        "Table 3: data loss and recovery vs replication factor ({WORKERS} workers, {} observations)\n",
        fmt_count(STREAM_LEN as f64)
    );
    let mut table = Table::new(&[
        "r",
        "failures",
        "probe fails",
        "strict avail",
        "BE compl",
        "survivors hold",
        "lost",
        "loss %",
        "detect+failover s",
        "ingest overhead",
    ]);

    // Ingest bytes at r=0 for the overhead column.
    let base_ingest_bytes = ingest_bytes(extent, 0);

    for replication in [0usize, 1, 2] {
        for victims in [vec![NodeId(3)], vec![NodeId(3), NodeId(4)]] {
            let cluster = launch(lan_config(extent, WORKERS, replication));
            let stream = synthetic_stream(STREAM_LEN, extent, 600, 53);
            ingest_chunked(&cluster, &stream, 1000);

            for &victim in &victims {
                cluster.kill_worker(victim);
            }
            let (strict_avail, mean_completeness) = crash_window_availability(&cluster, extent);
            let (failed, recovery_s) = timed(|| cluster.check_and_recover());
            assert_eq!(failed.len(), victims.len(), "missed a failure");
            // The executor books each dead worker as one failed probe
            // sub-query; probes never retry, so the count is exact.
            let probe_fails = op_stats(&cluster, "probe").failures;

            let held = cluster
                .range_query(extent.inflated(100.0), window_secs(10_000))
                .expect("audit")
                .len();
            let lost = STREAM_LEN.saturating_sub(held);
            let overhead = if replication == 0 {
                "1.00x".to_string()
            } else {
                format!(
                    "{:.2}x",
                    ingest_bytes(extent, replication) / base_ingest_bytes
                )
            };
            table.row(&[
                replication.to_string(),
                victims.len().to_string(),
                probe_fails.to_string(),
                format!("{:.0}%", strict_avail * 100.0),
                format!("{mean_completeness:.3}"),
                fmt_count(held as f64),
                lost.to_string(),
                format!("{:.3}%", lost as f64 * 100.0 / STREAM_LEN as f64),
                format!("{recovery_s:.2}"),
                overhead,
            ]);
            cluster.shutdown();
        }
    }
    table.print();
    println!(
        "\n(failures are ring-adjacent — the worst case; acked ingest replicates\n\
         synchronously before acknowledging, so loss under r ≥ failures is exactly 0;\n\
         availability columns are measured before the recovery tick, when only\n\
         replica-failover reads can answer for the dead shards)"
    );
}

/// Probes the crash window: strict and best-effort range/kNN/heat-map
/// queries against a cluster whose victims are dead but not yet failed
/// out. Returns (fraction of strict queries answered, mean best-effort
/// completeness fraction).
fn crash_window_availability(cluster: &Cluster, extent: BBox) -> (f64, f64) {
    // Short read policies so each dead-primary sub-query fails over (or
    // fails) quickly instead of burning the default RPC budget.
    for op in ["range", "knn_phase1", "knn_phase2", "heatmap"] {
        cluster.set_op_policy(op, OpPolicy::new(std::time::Duration::from_millis(600)));
    }
    let window = window_secs(10_000);
    let buckets = GridSpec::covering(extent, extent.width() / 16.0);
    let mut strict_ok = 0u32;
    let mut strict_total = 0u32;
    let mut completeness_sum = 0.0;
    let mut best_effort_total = 0u32;
    for round in 0..2u32 {
        let at = Point::new(
            extent.min.x + extent.width() * (0.25 + 0.4 * round as f64),
            extent.min.y + extent.height() * (0.6 - 0.3 * round as f64),
        );
        strict_total += 3;
        strict_ok += u32::from(cluster.range_query(extent, window).is_ok());
        strict_ok += u32::from(cluster.knn_query(at, window, 10).is_ok());
        strict_ok += u32::from(cluster.heatmap(&buckets, window).is_ok());
        let fractions = [
            cluster
                .range_query_with(QueryMode::BestEffort, extent, window)
                .map(|d| d.completeness.fraction()),
            cluster
                .knn_query_with(QueryMode::BestEffort, at, window, 10)
                .map(|d| d.completeness.fraction()),
            cluster
                .heatmap_with(QueryMode::BestEffort, &buckets, window)
                .map(|d| d.completeness.fraction()),
        ];
        for fraction in fractions {
            best_effort_total += 1;
            completeness_sum += fraction.unwrap_or(0.0);
        }
    }
    (
        f64::from(strict_ok) / f64::from(strict_total),
        completeness_sum / f64::from(best_effort_total),
    )
}

/// Total fabric bytes to ingest a small reference stream at the given
/// replication factor.
fn ingest_bytes(extent: stcam_geo::BBox, replication: usize) -> f64 {
    let cluster = launch(lan_config(extent, WORKERS, replication));
    let stream = synthetic_stream(20_000, extent, 600, 59);
    ingest_chunked(&cluster, &stream, 1000);
    let bytes = cluster.fabric_stats().total_bytes as f64;
    cluster.shutdown();
    bytes
}
