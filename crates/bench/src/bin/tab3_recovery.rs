//! Table 3 — fault tolerance: data loss and recovery time vs replication
//! factor.
//!
//! For each replication factor, stream a workload, kill one worker (and,
//! in the paired column, two ring-adjacent workers) mid-archive, run
//! detection + failover, and audit completeness. Expected shape: r = 0
//! loses the whole dead shard (~1/N of the data); r = 1 survives one
//! failure losing at most in-flight replication traffic; r = 2 survives
//! two adjacent failures. Recovery time is dominated by replica-log
//! promotion, proportional to the dead shard's size. Failure detection
//! itself is visible in the executor's telemetry: each dead worker shows
//! up as exactly one failed (deliberately non-retried) probe.
//!
//! ```text
//! cargo run -p stcam-bench --release --bin tab3_recovery
//! ```

use stcam_bench::{
    fmt_count, ingest_chunked, lan_config, launch, op_stats, square_extent, synthetic_stream,
    timed, window_secs, Table,
};
use stcam_net::NodeId;

const EXTENT_M: f64 = 8_000.0;
const WORKERS: usize = 8;
const STREAM_LEN: usize = 200_000;

fn main() {
    let extent = square_extent(EXTENT_M);
    println!(
        "Table 3: data loss and recovery vs replication factor ({WORKERS} workers, {} observations)\n",
        fmt_count(STREAM_LEN as f64)
    );
    let mut table = Table::new(&[
        "r",
        "failures",
        "probe fails",
        "survivors hold",
        "lost",
        "loss %",
        "detect+failover s",
        "ingest overhead",
    ]);

    // Ingest bytes at r=0 for the overhead column.
    let base_ingest_bytes = ingest_bytes(extent, 0);

    for replication in [0usize, 1, 2] {
        for victims in [vec![NodeId(3)], vec![NodeId(3), NodeId(4)]] {
            let cluster = launch(lan_config(extent, WORKERS, replication));
            let stream = synthetic_stream(STREAM_LEN, extent, 600, 53);
            ingest_chunked(&cluster, &stream, 1000);

            for &victim in &victims {
                cluster.kill_worker(victim);
            }
            let (failed, recovery_s) = timed(|| cluster.check_and_recover());
            assert_eq!(failed.len(), victims.len(), "missed a failure");
            // The executor books each dead worker as one failed probe
            // sub-query; probes never retry, so the count is exact.
            let probe_fails = op_stats(&cluster, "probe").failures;

            let held = cluster
                .range_query(extent.inflated(100.0), window_secs(10_000))
                .expect("audit")
                .len();
            let lost = STREAM_LEN.saturating_sub(held);
            let overhead = if replication == 0 {
                "1.00x".to_string()
            } else {
                format!(
                    "{:.2}x",
                    ingest_bytes(extent, replication) / base_ingest_bytes
                )
            };
            table.row(&[
                replication.to_string(),
                victims.len().to_string(),
                probe_fails.to_string(),
                fmt_count(held as f64),
                lost.to_string(),
                format!("{:.3}%", lost as f64 * 100.0 / STREAM_LEN as f64),
                format!("{recovery_s:.2}"),
                overhead,
            ]);
            cluster.shutdown();
        }
    }
    table.print();
    println!(
        "\n(failures are ring-adjacent — the worst case; replication is asynchronous,\n\
         so loss under r ≥ failures is bounded by in-flight replica traffic)"
    );
}

/// Total fabric bytes to ingest a small reference stream at the given
/// replication factor.
fn ingest_bytes(extent: stcam_geo::BBox, replication: usize) -> f64 {
    let cluster = launch(lan_config(extent, WORKERS, replication));
    let stream = synthetic_stream(20_000, extent, 600, 59);
    ingest_chunked(&cluster, &stream, 1000);
    let bytes = cluster.fabric_stats().total_bytes as f64;
    cluster.shutdown();
    bytes
}
