//! Figure 6 — kNN query cost vs k: two-phase pruned search vs naive
//! broadcast.
//!
//! The framework's kNN first asks the owner of the query point's cell,
//! then bounds phase two by the k-th distance; the baseline broadcasts to
//! every worker. The hardware-independent win is in *messages and bytes
//! per query*: pruning contacts a small, k-dependent subset of workers.
//! The executor's per-operation telemetry gives the sub-query counts
//! directly (phase 1 + phase 2 for pruned, one op for broadcast) and
//! confirms no retries inflate them on the clean link.
//!
//! ```text
//! cargo run -p stcam-bench --release --bin fig6_knn
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stcam_bench::{
    fmt_count, ingest_chunked, lan_config, launch, op_stats, square_extent, synthetic_stream,
    window_secs, LatencyStats, Table,
};
use stcam_geo::Point;

const ARCHIVE: usize = 1_000_000;
const EXTENT_M: f64 = 8_000.0;
const QUERIES_PER_POINT: usize = 60;
const WORKERS: usize = 16;

fn main() {
    let extent = square_extent(EXTENT_M);
    let stream = synthetic_stream(ARCHIVE, extent, 600, 13);
    println!(
        "Figure 6: kNN two-phase pruning vs broadcast ({} archive, {WORKERS} workers)\n",
        fmt_count(ARCHIVE as f64)
    );
    let cluster = launch(lan_config(extent, WORKERS, 0));
    ingest_chunked(&cluster, &stream, 2000);

    let window = window_secs(600);
    let mut table = Table::new(&[
        "k",
        "pruned ms (m/p50/p95)",
        "pruned subq/q",
        "pruned KB/q",
        "bcast ms (m/p50/p95)",
        "bcast subq/q",
        "bcast KB/q",
        "retries",
    ]);

    for k in [1usize, 4, 16, 64, 256] {
        let mut rng = StdRng::seed_from_u64(k as u64);
        let points: Vec<Point> = (0..QUERIES_PER_POINT)
            .map(|_| Point::new(rng.gen_range(0.0..EXTENT_M), rng.gen_range(0.0..EXTENT_M)))
            .collect();

        let before = cluster.fabric_stats();
        let (p1_before, p2_before, bc_before) = (
            op_stats(&cluster, "knn_phase1"),
            op_stats(&cluster, "knn_phase2"),
            op_stats(&cluster, "knn_broadcast"),
        );
        let mut pruned_samples = Vec::new();
        for &at in &points {
            let t0 = std::time::Instant::now();
            let result = cluster.knn_query(at, window, k).expect("knn");
            pruned_samples.push(t0.elapsed().as_secs_f64());
            assert_eq!(result.len(), k.min(ARCHIVE));
        }
        let mid = cluster.fabric_stats();
        let mut bcast_samples = Vec::new();
        for &at in &points {
            let t0 = std::time::Instant::now();
            let result = cluster.knn_broadcast(at, window, k).expect("knn");
            bcast_samples.push(t0.elapsed().as_secs_f64());
            assert_eq!(result.len(), k.min(ARCHIVE));
        }
        let after = cluster.fabric_stats();

        let pruned = mid.since(&before);
        let bcast = after.since(&mid);
        // Executor view of the same traffic: workers contacted per query
        // (phase 1 is always one; phase 2 grows with the k-th distance)
        // and timeout retries (zero on the clean LAN model).
        let p1 = op_stats(&cluster, "knn_phase1").since(&p1_before);
        let p2 = op_stats(&cluster, "knn_phase2").since(&p2_before);
        let bc = op_stats(&cluster, "knn_broadcast").since(&bc_before);
        let q = points.len() as f64;
        table.row(&[
            k.to_string(),
            LatencyStats::from_samples(&pruned_samples).render_ms(),
            format!("{:.1}", (p1.sub_queries + p2.sub_queries) as f64 / q),
            format!("{:.1}", pruned.total_bytes as f64 / 1024.0 / q),
            LatencyStats::from_samples(&bcast_samples).render_ms(),
            format!("{:.1}", bc.sub_queries as f64 / q),
            format!("{:.1}", bcast.total_bytes as f64 / 1024.0 / q),
            (p1.retries + p2.retries + bc.retries).to_string(),
        ]);
    }
    table.print();
    println!("\n(both strategies verified to return identical result sets by the test suite)");
    cluster.shutdown();
}
