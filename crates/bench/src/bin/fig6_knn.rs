//! Figure 6 — kNN query cost vs k: two-phase pruned search vs naive
//! broadcast.
//!
//! The framework's kNN first asks the owner of the query point's cell,
//! then bounds phase two by the k-th distance; the baseline broadcasts to
//! every worker. The hardware-independent win is in *messages and bytes
//! per query*: pruning contacts a small, k-dependent subset of workers.
//!
//! ```text
//! cargo run -p stcam-bench --release --bin fig6_knn
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stcam::{Cluster, ClusterConfig};
use stcam_bench::{fmt_count, square_extent, synthetic_stream, LatencyStats, Table};
use stcam_geo::{Point, TimeInterval, Timestamp};
use stcam_net::LinkModel;

const ARCHIVE: usize = 1_000_000;
const EXTENT_M: f64 = 8_000.0;
const QUERIES_PER_POINT: usize = 60;
const WORKERS: usize = 16;

fn main() {
    let extent = square_extent(EXTENT_M);
    let stream = synthetic_stream(ARCHIVE, extent, 600, 13);
    println!(
        "Figure 6: kNN two-phase pruning vs broadcast ({} archive, {WORKERS} workers)\n",
        fmt_count(ARCHIVE as f64)
    );
    let cluster = Cluster::launch(
        ClusterConfig::new(extent, WORKERS)
            .with_replication(0)
            .with_link(LinkModel::lan()),
    )
    .expect("launch");
    for chunk in stream.chunks(2000) {
        cluster.ingest(chunk.to_vec()).expect("ingest");
    }
    cluster.flush().expect("flush");

    let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(600));
    let mut table = Table::new(&[
        "k",
        "pruned ms (m/p50/p95)",
        "pruned msgs/q",
        "pruned KB/q",
        "bcast ms (m/p50/p95)",
        "bcast msgs/q",
        "bcast KB/q",
    ]);

    for k in [1usize, 4, 16, 64, 256] {
        let mut rng = StdRng::seed_from_u64(k as u64);
        let points: Vec<Point> = (0..QUERIES_PER_POINT)
            .map(|_| Point::new(rng.gen_range(0.0..EXTENT_M), rng.gen_range(0.0..EXTENT_M)))
            .collect();

        let before = cluster.fabric_stats();
        let mut pruned_samples = Vec::new();
        for &at in &points {
            let t0 = std::time::Instant::now();
            let result = cluster.knn_query(at, window, k).expect("knn");
            pruned_samples.push(t0.elapsed().as_secs_f64());
            assert_eq!(result.len(), k.min(ARCHIVE));
        }
        let mid = cluster.fabric_stats();
        let mut bcast_samples = Vec::new();
        for &at in &points {
            let t0 = std::time::Instant::now();
            let result = cluster.knn_broadcast(at, window, k).expect("knn");
            bcast_samples.push(t0.elapsed().as_secs_f64());
            assert_eq!(result.len(), k.min(ARCHIVE));
        }
        let after = cluster.fabric_stats();

        let pruned = mid.since(&before);
        let bcast = after.since(&mid);
        let q = points.len() as f64;
        table.row(&[
            k.to_string(),
            LatencyStats::from_samples(&pruned_samples).render_ms(),
            format!("{:.1}", pruned.total_msgs as f64 / q),
            format!("{:.1}", pruned.total_bytes as f64 / 1024.0 / q),
            LatencyStats::from_samples(&bcast_samples).render_ms(),
            format!("{:.1}", bcast.total_msgs as f64 / q),
            format!("{:.1}", bcast.total_bytes as f64 / 1024.0 / q),
        ]);
    }
    table.print();
    println!("\n(both strategies verified to return identical result sets by the test suite)");
    cluster.shutdown();
}
