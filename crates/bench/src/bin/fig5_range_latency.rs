//! Figure 5 — range-query latency vs query region size.
//!
//! A fixed archive of one million observations; query squares sweep from
//! 0.01% to 25% of the deployment area. Three systems: the distributed
//! cluster (8 workers), the centralized grid index, and the centralized
//! flat scan. Expected shape: flat scan is size-independent (always
//! ~full-scan cost) and overtakes the index once selectivity is low
//! enough; the indexed systems grow with hit count; the cluster's
//! *critical path* (busiest shard's scan time — its latency when each worker
//! is a machine) wins on large regions through parallel shard scans but
//! pays a constant scatter/gather overhead on tiny ones. Cluster
//! wall-clock on a low-core host additionally pays result
//! serialization. The executor's own telemetry splits that wall time
//! into scatter (fan-out + worker + wire) and merge (coordinator-side
//! combine) — merge grows with hit count, scatter dominates tiny
//! queries.
//!
//! ```text
//! cargo run -p stcam-bench --release --bin fig5_range_latency
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stcam::CentralizedStore;
use stcam_bench::{
    fmt_count, ingest_chunked, lan_config, launch, op_stats, square_extent, synthetic_stream,
    window_secs, LatencyStats, Table,
};
use stcam_geo::{BBox, Duration, Point};
use stcam_index::IndexConfig;

const ARCHIVE: usize = 1_000_000;
const EXTENT_M: f64 = 8_000.0;
const QUERIES_PER_POINT: usize = 60;

fn main() {
    let extent = square_extent(EXTENT_M);
    let stream = synthetic_stream(ARCHIVE, extent, 600, 11);
    println!(
        "Figure 5: range-query latency vs region size ({} observation archive)\n",
        fmt_count(ARCHIVE as f64)
    );

    let cluster = launch(lan_config(extent, 8, 0));
    ingest_chunked(&cluster, &stream, 2000);

    let mut indexed =
        CentralizedStore::indexed(IndexConfig::new(extent, 100.0, Duration::from_secs(10)));
    indexed.ingest(stream.clone());
    let mut flat = CentralizedStore::flat();
    flat.ingest(stream);

    let window = window_secs(600);
    let mut table = Table::new(&[
        "area %",
        "side m",
        "hits",
        "cluster wall ms (m/p50/p95)",
        "scatter/merge ms",
        "cluster crit-path ms",
        "central-idx ms",
        "flat-scan ms",
    ]);

    for area_pct in [0.01, 0.1, 1.0, 5.0, 25.0] {
        let side = EXTENT_M * (area_pct / 100.0f64).sqrt();
        let mut rng = StdRng::seed_from_u64(area_pct.to_bits());
        let regions: Vec<BBox> = (0..QUERIES_PER_POINT)
            .map(|_| {
                let x = rng.gen_range(0.0..EXTENT_M - side);
                let y = rng.gen_range(0.0..EXTENT_M - side);
                BBox::new(Point::new(x, y), Point::new(x + side, y + side))
            })
            .collect();

        let mut hits = 0usize;
        let mut samples_cluster = Vec::new();
        let mut samples_indexed = Vec::new();
        let mut samples_flat = Vec::new();
        let busy_before: u64 = cluster
            .stats()
            .expect("stats")
            .workers
            .iter()
            .map(|(_, s)| s.busy_micros)
            .max()
            .unwrap_or(0);
        let exec_before = op_stats(&cluster, "range");
        for region in &regions {
            let t0 = std::time::Instant::now();
            hits += cluster.range_query(*region, window).expect("query").len();
            samples_cluster.push(t0.elapsed().as_secs_f64());

            let t0 = std::time::Instant::now();
            let _ = indexed.range_query(*region, window);
            samples_indexed.push(t0.elapsed().as_secs_f64());

            let t0 = std::time::Instant::now();
            let _ = flat.range_query(*region, window);
            samples_flat.push(t0.elapsed().as_secs_f64());
        }
        let busy_after: u64 = cluster
            .stats()
            .expect("stats")
            .workers
            .iter()
            .map(|(_, s)| s.busy_micros)
            .max()
            .unwrap_or(0);
        let crit_path_ms = (busy_after - busy_before) as f64 / 1e3 / regions.len() as f64;
        // The executor's latency split over the same queries: scatter
        // (fan-out through gather) vs merge (combining the partials).
        let exec = op_stats(&cluster, "range").since(&exec_before);
        let q = regions.len() as f64;
        table.row(&[
            format!("{area_pct}"),
            format!("{side:.0}"),
            fmt_count(hits as f64 / regions.len() as f64),
            LatencyStats::from_samples(&samples_cluster).render_ms(),
            format!(
                "{:.2}/{:.2}",
                exec.scatter_micros as f64 / 1e3 / q,
                exec.merge_micros as f64 / 1e3 / q
            ),
            format!("{crit_path_ms:.2}"),
            format!(
                "{:.2}",
                LatencyStats::from_samples(&samples_indexed).mean * 1e3
            ),
            format!(
                "{:.2}",
                LatencyStats::from_samples(&samples_flat).mean * 1e3
            ),
        ]);
    }
    table.print();
    cluster.shutdown();
}
