//! Table 2 — communication cost per operation type.
//!
//! Exact wire accounting for each operation class, on a fixed 8-worker
//! archive, from two independent meters that must agree in shape: the
//! instrumented fabric (every byte that crosses it) and the executor's
//! per-operation telemetry, which additionally splits query traffic into
//! request bytes up and result bytes down.
//!
//! ```text
//! cargo run -p stcam-bench --release --bin tab2_comm_cost
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stcam::{Cluster, Predicate};
use stcam_bench::report::{obj, Report, Value};
use stcam_bench::{
    fmt_count, lan_config, launch, op_stats, square_extent, synthetic_stream, window_secs, Table,
};
use stcam_geo::{BBox, GridSpec, Point};
use stcam_net::FabricStats;

const EXTENT_M: f64 = 8_000.0;
const WORKERS: usize = 8;
const ARCHIVE: usize = 200_000;
const OPS: usize = 50;

/// One measured operation class: fabric msgs/KB per op, and (for
/// executor-mediated operations) request/result KB per op.
struct Row {
    label: String,
    msgs: f64,
    kb: f64,
    exec_up_down: Option<(f64, f64)>,
}

fn main() {
    let extent = square_extent(EXTENT_M);
    println!(
        "Table 2: communication cost per operation ({WORKERS} workers, {} archive, mean of {OPS} ops)\n",
        fmt_count(ARCHIVE as f64)
    );

    let run = |replication: usize| -> Vec<Row> {
        let cluster = launch(lan_config(extent, WORKERS, replication));
        let stream = synthetic_stream(ARCHIVE, extent, 600, 47);
        let mut rows = Vec::new();
        let mut mark = cluster.fabric_stats();
        let mut measure =
            |label: &str, cluster: &Cluster, exec_ops: &[&str], ops: usize, f: &mut dyn FnMut()| {
                let exec_before: Vec<_> = exec_ops
                    .iter()
                    .map(|name| op_stats(cluster, name))
                    .collect();
                f();
                let now = cluster.fabric_stats();
                let delta: FabricStats = now.since(&mark);
                mark = now;
                let exec_up_down = (!exec_ops.is_empty()).then(|| {
                    let (mut up, mut down) = (0u64, 0u64);
                    for (name, before) in exec_ops.iter().zip(&exec_before) {
                        let d = op_stats(cluster, name).since(before);
                        up += d.bytes_sent;
                        down += d.bytes_received;
                    }
                    (
                        up as f64 / 1024.0 / ops as f64,
                        down as f64 / 1024.0 / ops as f64,
                    )
                });
                rows.push(Row {
                    label: label.to_string(),
                    msgs: delta.total_msgs as f64 / ops as f64,
                    kb: delta.total_bytes as f64 / 1024.0 / ops as f64,
                    exec_up_down,
                });
            };

        // Ingest routes directly through the endpoint (not the executor),
        // so it has fabric accounting only.
        measure(
            "ingest (batch of 500)",
            &cluster,
            &[],
            ARCHIVE / 500,
            &mut || {
                for chunk in stream.chunks(500) {
                    cluster.ingest(chunk.to_vec()).expect("ingest");
                }
                cluster.flush().expect("flush");
            },
        );

        let window = window_secs(600);
        let mut rng = StdRng::seed_from_u64(3);
        let mut points: Vec<Point> = Vec::new();
        for _ in 0..OPS {
            points.push(Point::new(
                rng.gen_range(0.0..EXTENT_M),
                rng.gen_range(0.0..EXTENT_M),
            ));
        }
        measure("range 500 m", &cluster, &["range"], OPS, &mut || {
            for &p in &points {
                cluster
                    .range_query(BBox::around(p, 500.0), window)
                    .expect("range");
            }
        });
        measure(
            "kNN k=16 (pruned)",
            &cluster,
            &["knn_phase1", "knn_phase2"],
            OPS,
            &mut || {
                for &p in &points {
                    cluster.knn_query(p, window, 16).expect("knn");
                }
            },
        );
        measure(
            "kNN k=16 (broadcast)",
            &cluster,
            &["knn_broadcast"],
            OPS,
            &mut || {
                for &p in &points {
                    cluster.knn_broadcast(p, window, 16).expect("knn");
                }
            },
        );
        let buckets = GridSpec::covering(extent, EXTENT_M / 64.0);
        measure(
            "heatmap 64×64 (partial)",
            &cluster,
            &["heatmap"],
            OPS,
            &mut || {
                for _ in 0..OPS {
                    cluster.heatmap(&buckets, window).expect("heatmap");
                }
            },
        );
        // Ship-all is a plain range query plus coordinator-side
        // bucketing, so its executor traffic books under "range".
        measure(
            "heatmap 64×64 (ship-all)",
            &cluster,
            &["range"],
            OPS,
            &mut || {
                for _ in 0..OPS {
                    cluster.heatmap_ship_all(&buckets, window).expect("heatmap");
                }
            },
        );
        measure(
            "top-cells 64×64 k=16",
            &cluster,
            &["top_cells"],
            OPS,
            &mut || {
                for _ in 0..OPS {
                    cluster.top_cells(&buckets, window, 16).expect("top_cells");
                }
            },
        );
        measure(
            "register continuous",
            &cluster,
            &["register_continuous"],
            OPS,
            &mut || {
                for &p in &points {
                    cluster
                        .register_continuous(Predicate {
                            region: BBox::around(p, 250.0),
                            class: None,
                        })
                        .expect("register");
                }
            },
        );
        cluster.shutdown();
        rows
    };

    let r0 = run(0);
    let r2 = run(2);
    let mut table = Table::new(&[
        "operation",
        "msgs (r=0)",
        "KB (r=0)",
        "KB up/down (r=0)",
        "msgs (r=2)",
        "KB (r=2)",
    ]);
    let up_down = |row: &Row| match row.exec_up_down {
        Some((up, down)) => format!("{up:.1}/{down:.1}"),
        None => "—".to_string(),
    };
    for (a, b) in r0.iter().zip(&r2) {
        table.row(&[
            a.label.clone(),
            format!("{:.1}", a.msgs),
            format!("{:.1}", a.kb),
            up_down(a),
            format!("{:.1}", b.msgs),
            format!("{:.1}", b.kb),
        ]);
    }
    table.print();
    println!(
        "\n(r = replication factor; replication multiplies ingest traffic only.\n\
         KB up/down is the executor's request/result split — fabric totals also\n\
         include ingest routing and replica forwarding, hence ship-all KB > up+down)"
    );

    let json_rows = |rows: &[Row]| -> Vec<Value> {
        rows.iter()
            .map(|r| {
                let mut pairs = vec![
                    ("operation", Value::from(r.label.clone())),
                    ("msgs_per_op", Value::from(r.msgs)),
                    ("kb_per_op", Value::from(r.kb)),
                ];
                if let Some((up, down)) = r.exec_up_down {
                    pairs.push(("kb_up_per_op", Value::from(up)));
                    pairs.push(("kb_down_per_op", Value::from(down)));
                }
                obj(pairs)
            })
            .collect()
    };
    let mut report = Report::new("tab2_comm_cost");
    report
        .set("workers", WORKERS)
        .set("archive", ARCHIVE)
        .set("ops", OPS)
        .set("replication_0", json_rows(&r0))
        .set("replication_2", json_rows(&r2));
    report.emit();
}
