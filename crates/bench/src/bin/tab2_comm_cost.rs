//! Table 2 — communication cost per operation type.
//!
//! Exact wire accounting (every byte crosses the instrumented fabric) for
//! each operation class, on a fixed 8-worker archive.
//!
//! ```text
//! cargo run -p stcam-bench --release --bin tab2_comm_cost
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stcam::{Cluster, ClusterConfig, Predicate};
use stcam_bench::{fmt_count, square_extent, synthetic_stream, Table};
use stcam_geo::{BBox, GridSpec, Point, TimeInterval, Timestamp};
use stcam_net::{FabricStats, LinkModel};

const EXTENT_M: f64 = 8_000.0;
const WORKERS: usize = 8;
const ARCHIVE: usize = 200_000;
const OPS: usize = 50;

fn main() {
    let extent = square_extent(EXTENT_M);
    println!(
        "Table 2: communication cost per operation ({WORKERS} workers, {} archive, mean of {OPS} ops)\n",
        fmt_count(ARCHIVE as f64)
    );

    let run = |replication: usize| -> Vec<(String, f64, f64)> {
        let cluster = Cluster::launch(
            ClusterConfig::new(extent, WORKERS)
                .with_replication(replication)
                .with_link(LinkModel::lan()),
        )
        .expect("launch");
        let stream = synthetic_stream(ARCHIVE, extent, 600, 47);
        let mut rows = Vec::new();
        let mut mark = cluster.fabric_stats();
        let mut measure = |label: &str, cluster: &Cluster, ops: usize, f: &mut dyn FnMut()| {
            f();
            let now = cluster.fabric_stats();
            let delta: FabricStats = now.since(&mark);
            mark = now;
            rows.push((
                label.to_string(),
                delta.total_msgs as f64 / ops as f64,
                delta.total_bytes as f64 / 1024.0 / ops as f64,
            ));
        };

        measure("ingest (batch of 500)", &cluster, ARCHIVE / 500, &mut || {
            for chunk in stream.chunks(500) {
                cluster.ingest(chunk.to_vec()).expect("ingest");
            }
            cluster.flush().expect("flush");
        });

        let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(600));
        let mut rng = StdRng::seed_from_u64(3);
        let mut points: Vec<Point> = Vec::new();
        for _ in 0..OPS {
            points.push(Point::new(rng.gen_range(0.0..EXTENT_M), rng.gen_range(0.0..EXTENT_M)));
        }
        measure("range 500 m", &cluster, OPS, &mut || {
            for &p in &points {
                cluster
                    .range_query(BBox::around(p, 500.0), window)
                    .expect("range");
            }
        });
        measure("kNN k=16 (pruned)", &cluster, OPS, &mut || {
            for &p in &points {
                cluster.knn_query(p, window, 16).expect("knn");
            }
        });
        measure("kNN k=16 (broadcast)", &cluster, OPS, &mut || {
            for &p in &points {
                cluster.knn_broadcast(p, window, 16).expect("knn");
            }
        });
        let buckets = GridSpec::covering(extent, EXTENT_M / 64.0);
        measure("heatmap 64×64 (partial)", &cluster, OPS, &mut || {
            for _ in 0..OPS {
                cluster.heatmap(&buckets, window).expect("heatmap");
            }
        });
        measure("heatmap 64×64 (ship-all)", &cluster, OPS, &mut || {
            for _ in 0..OPS {
                cluster.heatmap_ship_all(&buckets, window).expect("heatmap");
            }
        });
        measure("register continuous", &cluster, OPS, &mut || {
            for &p in &points {
                cluster
                    .register_continuous(Predicate {
                        region: BBox::around(p, 250.0),
                        class: None,
                    })
                    .expect("register");
            }
        });
        cluster.shutdown();
        rows
    };

    let r0 = run(0);
    let r2 = run(2);
    let mut table = Table::new(&["operation", "msgs (r=0)", "KB (r=0)", "msgs (r=2)", "KB (r=2)"]);
    for (a, b) in r0.iter().zip(&r2) {
        table.row(&[
            a.0.clone(),
            format!("{:.1}", a.1),
            format!("{:.1}", a.2),
            format!("{:.1}", b.1),
            format!("{:.1}", b.2),
        ]);
    }
    table.print();
    println!("\n(r = replication factor; replication multiplies ingest traffic only)");
}
