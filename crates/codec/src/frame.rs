//! Length-prefixed, checksummed framing for transport.
//!
//! A frame is:
//!
//! ```text
//! +-------+-----------------+----------------+---------+
//! | magic | payload length  | CRC-32 of body |  body   |
//! | 2 B   | u32 little end. | u32 little end.| N bytes |
//! +-------+-----------------+----------------+---------+
//! ```
//!
//! The fixed-width header keeps frame scanning trivial; varints are used
//! only *inside* payloads. The CRC-32 (IEEE polynomial) detects corruption
//! introduced by the fault-injection layer of the simulated network.

use bytes::{Buf, BufMut, BytesMut};

use crate::DecodeError;

/// Magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 2] = [0xC5, 0x7A];

/// Maximum accepted payload length (64 MiB).
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 2 + 4 + 4;

/// The decoded fixed-size header of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Payload length in bytes.
    pub len: u32,
    /// CRC-32 checksum of the payload.
    pub crc: u32,
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: once_table::Table = once_table::Table::new();
    let table = TABLE.get();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ table[idx];
    }
    !crc
}

mod once_table {
    use std::sync::OnceLock;

    pub struct Table(OnceLock<[u32; 256]>);

    impl Table {
        pub const fn new() -> Self {
            Table(OnceLock::new())
        }

        pub fn get(&self) -> &[u32; 256] {
            self.0.get_or_init(|| {
                let mut table = [0u32; 256];
                let mut i = 0;
                while i < 256 {
                    let mut crc = i as u32;
                    let mut bit = 0;
                    while bit < 8 {
                        crc = if crc & 1 != 0 {
                            (crc >> 1) ^ 0xEDB8_8320
                        } else {
                            crc >> 1
                        };
                        bit += 1;
                    }
                    table[i] = crc;
                    i += 1;
                }
                table
            })
        }
    }
}

/// Appends a complete frame wrapping `payload` to `buf`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_LEN`].
pub fn write_frame(buf: &mut BytesMut, payload: &[u8]) {
    assert!(
        payload.len() <= MAX_FRAME_LEN as usize,
        "payload exceeds MAX_FRAME_LEN"
    );
    buf.reserve(HEADER_LEN + payload.len());
    buf.put_slice(&FRAME_MAGIC);
    buf.put_u32_le(payload.len() as u32);
    buf.put_u32_le(crc32(payload));
    buf.put_slice(payload);
}

/// Attempts to read one complete frame from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer does not yet hold a complete frame
/// (read more bytes and retry); on success the frame is consumed from
/// `buf` and its payload returned.
///
/// # Errors
///
/// Returns [`DecodeError::BadMagic`], [`DecodeError::LengthOverflow`], or
/// [`DecodeError::ChecksumMismatch`] on corrupt input. The buffer is left
/// untouched on `Ok(None)` and in an unspecified (but safe) state on error.
pub fn read_frame(buf: &mut BytesMut) -> Result<Option<Vec<u8>>, DecodeError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    if buf[0..2] != FRAME_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let mut header = &buf[2..HEADER_LEN];
    let len = header.get_u32_le();
    let crc = header.get_u32_le();
    if len > MAX_FRAME_LEN {
        return Err(DecodeError::LengthOverflow {
            declared: len as u64,
            max: MAX_FRAME_LEN as u64,
        });
    }
    let total = HEADER_LEN + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    buf.advance(HEADER_LEN);
    let payload = buf.split_to(len as usize).to_vec();
    if crc32(&payload) != crc {
        return Err(DecodeError::ChecksumMismatch);
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trip() {
        let mut buf = BytesMut::new();
        write_frame(&mut buf, b"hello");
        write_frame(&mut buf, b"");
        write_frame(&mut buf, &[7u8; 1000]);
        assert_eq!(read_frame(&mut buf).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut buf).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut buf).unwrap().unwrap(), vec![7u8; 1000]);
        assert_eq!(read_frame(&mut buf).unwrap(), None);
        assert!(buf.is_empty());
    }

    #[test]
    fn partial_frame_waits_for_more() {
        let mut full = BytesMut::new();
        write_frame(&mut full, b"payload");
        for cut in 0..full.len() {
            let mut partial = BytesMut::from(&full[..cut]);
            assert_eq!(read_frame(&mut partial).unwrap(), None, "cut at {cut}");
            assert_eq!(partial.len(), cut, "buffer must be untouched");
        }
    }

    #[test]
    fn corrupt_payload_detected() {
        let mut buf = BytesMut::new();
        write_frame(&mut buf, b"important data");
        let idx = HEADER_LEN + 3;
        buf[idx] ^= 0x01;
        assert_eq!(read_frame(&mut buf), Err(DecodeError::ChecksumMismatch));
    }

    #[test]
    fn bad_magic_detected() {
        let mut buf = BytesMut::new();
        write_frame(&mut buf, b"x");
        buf[0] = 0;
        assert_eq!(read_frame(&mut buf), Err(DecodeError::BadMagic));
    }

    #[test]
    fn hostile_length_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(&FRAME_MAGIC);
        buf.put_u32_le(u32::MAX);
        buf.put_u32_le(0);
        assert!(matches!(
            read_frame(&mut buf),
            Err(DecodeError::LengthOverflow { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "payload exceeds MAX_FRAME_LEN")]
    fn oversized_write_panics() {
        let mut buf = BytesMut::new();
        // Use a fake huge slice length via from_raw_parts? No — just build
        // a vec one past the limit. 64 MiB + 1 allocation is acceptable in
        // a test.
        let payload = vec![0u8; MAX_FRAME_LEN as usize + 1];
        write_frame(&mut buf, &payload);
    }
}
