//! LEB128 variable-length integer encoding with ZigZag for signed values.
//!
//! Unsigned integers are written 7 bits at a time, least-significant group
//! first, with the high bit of each byte marking continuation. A `u64`
//! therefore occupies 1–10 bytes; the ids, counts and cell coordinates that
//! dominate `stcam` traffic almost always fit in 1–3.

use bytes::{Buf, BufMut};

use crate::DecodeError;

/// Maximum encoded width of a `u64` varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends `v` to `buf` as a LEB128 varint.
pub fn write_u64<B: BufMut>(buf: &mut B, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 varint from `buf`.
///
/// # Errors
///
/// Returns [`DecodeError::UnexpectedEnd`] when the buffer runs out before a
/// terminating byte, and [`DecodeError::VarintOverflow`] when the encoding
/// exceeds [`MAX_VARINT_LEN`] bytes or overflows 64 bits.
pub fn read_u64<B: Buf>(buf: &mut B) -> Result<u64, DecodeError> {
    let mut result = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(DecodeError::UnexpectedEnd { context: "varint" });
        }
        let byte = buf.get_u8();
        let low = (byte & 0x7F) as u64;
        if shift >= 63 && low > 1 {
            return Err(DecodeError::VarintOverflow);
        }
        result |= low << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
        if shift as usize >= MAX_VARINT_LEN * 7 {
            return Err(DecodeError::VarintOverflow);
        }
    }
}

/// The number of bytes [`write_u64`] would emit for `v`.
pub fn len_u64(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

/// Maps a signed integer to an unsigned one so that values of small
/// magnitude (of either sign) get short varints: 0 → 0, -1 → 1, 1 → 2, …
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `v` to `buf` as a ZigZag-mapped varint.
pub fn write_i64<B: BufMut>(buf: &mut B, v: i64) {
    write_u64(buf, zigzag(v));
}

/// Reads a ZigZag-mapped varint from `buf`.
///
/// # Errors
///
/// Propagates the errors of [`read_u64`].
pub fn read_i64<B: Buf>(buf: &mut B) -> Result<i64, DecodeError> {
    read_u64(buf).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn round_trip_u64(v: u64) -> usize {
        let mut buf = BytesMut::new();
        write_u64(&mut buf, v);
        let n = buf.len();
        assert_eq!(len_u64(v), n, "len_u64 wrong for {v}");
        let mut slice = &buf[..];
        assert_eq!(read_u64(&mut slice).unwrap(), v);
        assert!(slice.is_empty());
        n
    }

    #[test]
    fn boundaries_round_trip_with_expected_widths() {
        assert_eq!(round_trip_u64(0), 1);
        assert_eq!(round_trip_u64(127), 1);
        assert_eq!(round_trip_u64(128), 2);
        assert_eq!(round_trip_u64(16_383), 2);
        assert_eq!(round_trip_u64(16_384), 3);
        assert_eq!(round_trip_u64(u32::MAX as u64), 5);
        assert_eq!(round_trip_u64(u64::MAX), 10);
    }

    #[test]
    fn zigzag_small_magnitudes_are_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for v in [-1_000_000i64, -1, 0, 1, 42, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn signed_round_trip() {
        for v in [i64::MIN, -12345, -1, 0, 1, 12345, i64::MAX] {
            let mut buf = BytesMut::new();
            write_i64(&mut buf, v);
            let mut slice = &buf[..];
            assert_eq!(read_i64(&mut slice).unwrap(), v);
        }
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = BytesMut::new();
        write_u64(&mut buf, 300);
        let mut slice = &buf[..1]; // drop the final byte
        assert!(matches!(
            read_u64(&mut slice),
            Err(DecodeError::UnexpectedEnd { .. })
        ));
    }

    #[test]
    fn overlong_encoding_rejected() {
        // Eleven continuation bytes can never be a valid u64.
        let bytes = [0xFFu8; 11];
        let mut slice = &bytes[..];
        assert_eq!(read_u64(&mut slice), Err(DecodeError::VarintOverflow));
    }

    #[test]
    fn overflowing_final_byte_rejected() {
        // 10-byte encoding whose last byte pushes past 64 bits.
        let bytes = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        let mut slice = &bytes[..];
        assert_eq!(read_u64(&mut slice), Err(DecodeError::VarintOverflow));
    }

    #[test]
    fn max_u64_highest_valid() {
        let bytes = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01];
        let mut slice = &bytes[..];
        assert_eq!(read_u64(&mut slice).unwrap(), u64::MAX);
    }
}
