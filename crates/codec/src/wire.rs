//! The [`Wire`] trait and implementations for standard types.

use bytes::{Buf, BufMut};

use crate::varint;
use crate::DecodeError;

/// Largest length prefix accepted for collections and strings (16 MiB of
/// elements); guards against corrupt or adversarial inputs allocating
/// unbounded memory.
pub const MAX_SEQ_LEN: u64 = 16 * 1024 * 1024;

/// A type with a deterministic binary wire form.
///
/// Encoding is infallible; decoding validates the input and returns a
/// [`DecodeError`] on malformed data. Implementations must round-trip:
/// `decode(encode(x)) == x` for every value `x`.
///
/// # Example
///
/// ```
/// use stcam_codec::{decode_from_slice, encode_to_vec};
///
/// let bytes = encode_to_vec(&(7u32, true));
/// let value: (u32, bool) = decode_from_slice(&bytes)?;
/// assert_eq!(value, (7, true));
/// # Ok::<(), stcam_codec::DecodeError>(())
/// ```
pub trait Wire: Sized {
    /// Appends this value's wire form to `buf`.
    fn encode<B: BufMut>(&self, buf: &mut B);

    /// Reads one value from the front of `buf`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the input is truncated, malformed, or
    /// violates a domain invariant of the target type.
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError>;

    /// A cheap estimate of this value's encoded size, used by
    /// [`encode_to_vec`] / [`encode_into`] to reserve buffer capacity up
    /// front. May be off in either direction — encoding is always exact —
    /// but implementations should make it tight for types that dominate
    /// hot-path traffic so single-allocation encoding is the common case.
    fn size_hint(&self) -> usize {
        16
    }
}

/// Encodes `value` into a fresh byte vector sized from its
/// [`Wire::size_hint`].
pub fn encode_to_vec<T: Wire>(value: &T) -> Vec<u8> {
    let mut out = Vec::with_capacity(value.size_hint());
    value.encode(&mut out);
    out
}

/// Appends `value`'s wire form to `out`, reserving capacity from its
/// [`Wire::size_hint`].
///
/// Hot paths that assemble many messages can keep one scratch `Vec` and
/// `clear()` it between messages, so the allocation is amortised across
/// the whole stream instead of paid per message.
pub fn encode_into<T: Wire>(value: &T, out: &mut Vec<u8>) {
    out.reserve(value.size_hint());
    value.encode(out);
}

/// Decodes a value from `bytes`, requiring that the whole slice is consumed.
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input, and
/// [`DecodeError::InvalidValue`] when trailing bytes remain.
pub fn decode_from_slice<T: Wire>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut slice = bytes;
    let value = T::decode(&mut slice)?;
    if !slice.is_empty() {
        return Err(DecodeError::InvalidValue {
            reason: "trailing bytes after value",
        });
    }
    Ok(value)
}

/// The exact number of bytes `value` occupies on the wire.
pub fn encoded_len<T: Wire>(value: &T) -> usize {
    // Correctness over micro-optimisation: measure by encoding. Message
    // construction dominates; this is used mainly by accounting code.
    encode_to_vec(value).len()
}

fn need<B: Buf>(buf: &B, n: usize, context: &'static str) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::UnexpectedEnd { context })
    } else {
        Ok(())
    }
}

impl Wire for bool {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(u8::from(*self));
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        need(buf, 1, "bool")?;
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(DecodeError::InvalidDiscriminant {
                type_name: "bool",
                value: v as u64,
            }),
        }
    }
    fn size_hint(&self) -> usize {
        1
    }
}

impl Wire for u8 {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(*self);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        need(buf, 1, "u8")?;
        Ok(buf.get_u8())
    }
    fn size_hint(&self) -> usize {
        1
    }
}

macro_rules! wire_varint_unsigned {
    ($($ty:ty),*) => {$(
        impl Wire for $ty {
            fn encode<B: BufMut>(&self, buf: &mut B) {
                varint::write_u64(buf, *self as u64);
            }
            fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
                let v = varint::read_u64(buf)?;
                <$ty>::try_from(v).map_err(|_| DecodeError::InvalidValue {
                    reason: concat!("varint out of range for ", stringify!($ty)),
                })
            }
            fn size_hint(&self) -> usize {
                varint::len_u64(*self as u64)
            }
        }
    )*};
}

wire_varint_unsigned!(u16, u32, u64, usize);

macro_rules! wire_varint_signed {
    ($($ty:ty),*) => {$(
        impl Wire for $ty {
            fn encode<B: BufMut>(&self, buf: &mut B) {
                varint::write_i64(buf, *self as i64);
            }
            fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
                let v = varint::read_i64(buf)?;
                <$ty>::try_from(v).map_err(|_| DecodeError::InvalidValue {
                    reason: concat!("varint out of range for ", stringify!($ty)),
                })
            }
            fn size_hint(&self) -> usize {
                varint::len_u64(varint::zigzag(*self as i64))
            }
        }
    )*};
}

wire_varint_signed!(i16, i32, i64);

impl Wire for f64 {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_f64_le(*self);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        need(buf, 8, "f64")?;
        Ok(buf.get_f64_le())
    }
    fn size_hint(&self) -> usize {
        8
    }
}

impl Wire for f32 {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_f32_le(*self);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        need(buf, 4, "f32")?;
        Ok(buf.get_f32_le())
    }
    fn size_hint(&self) -> usize {
        4
    }
}

impl Wire for String {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        varint::write_u64(buf, self.len() as u64);
        buf.put_slice(self.as_bytes());
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        let len = varint::read_u64(buf)?;
        if len > MAX_SEQ_LEN {
            return Err(DecodeError::LengthOverflow {
                declared: len,
                max: MAX_SEQ_LEN,
            });
        }
        let len = len as usize;
        need(buf, len, "string bytes")?;
        let mut bytes = vec![0u8; len];
        buf.copy_to_slice(&mut bytes);
        String::from_utf8(bytes).map_err(|_| DecodeError::InvalidUtf8)
    }
    fn size_hint(&self) -> usize {
        varint::len_u64(self.len() as u64) + self.len()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        varint::write_u64(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        let len = varint::read_u64(buf)?;
        if len > MAX_SEQ_LEN {
            return Err(DecodeError::LengthOverflow {
                declared: len,
                max: MAX_SEQ_LEN,
            });
        }
        let mut out = Vec::with_capacity((len as usize).min(1024));
        for _ in 0..len {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
    fn size_hint(&self) -> usize {
        // Elements of the hot collections (observations, counts) have
        // near-constant width, so extrapolating from the first element is
        // both cheap and tight.
        varint::len_u64(self.len() as u64)
            + self.first().map_or(0, |item| item.size_hint() * self.len())
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        need(buf, 1, "option tag")?;
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            v => Err(DecodeError::InvalidDiscriminant {
                type_name: "Option",
                value: v as u64,
            }),
        }
    }
    fn size_hint(&self) -> usize {
        1 + self.as_ref().map_or(0, Wire::size_hint)
    }
}

macro_rules! wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode<B: BufMut>(&self, buf: &mut B) {
                $(self.$idx.encode(buf);)+
            }
            fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
                Ok(($($name::decode(buf)?,)+))
            }
            fn size_hint(&self) -> usize {
                0 $(+ self.$idx.size_hint())+
            }
        }
    };
}

wire_tuple!(T0: 0);
wire_tuple!(T0: 0, T1: 1);
wire_tuple!(T0: 0, T1: 1, T2: 2);
wire_tuple!(T0: 0, T1: 1, T2: 2, T3: 3);
wire_tuple!(T0: 0, T1: 1, T2: 2, T3: 3, T4: 4);

impl<T: Wire, const N: usize> Wire for [T; N] {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        for item in self {
            item.encode(buf);
        }
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::decode(buf)?);
        }
        out.try_into().map_err(|_| DecodeError::InvalidValue {
            reason: "array length mismatch",
        })
    }
    fn size_hint(&self) -> usize {
        self.first().map_or(0, |item| item.size_hint() * N)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_to_vec(&v);
        assert_eq!(encoded_len(&v), bytes.len());
        let back: T = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(true);
        round_trip(false);
        round_trip(0u8);
        round_trip(255u8);
        round_trip(u16::MAX);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(i16::MIN);
        round_trip(i32::MIN);
        round_trip(i64::MIN);
        round_trip(1.5f64);
        round_trip(-0.0f64);
        round_trip(f64::INFINITY);
        round_trip(3.25f32);
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let bytes = encode_to_vec(&f64::NAN);
        let back: f64 = decode_from_slice(&bytes).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn strings_and_collections() {
        round_trip(String::new());
        round_trip(String::from("héllo, wörld"));
        round_trip::<Vec<u64>>(vec![]);
        round_trip(vec![1u64, 2, 3, u64::MAX]);
        round_trip(vec![String::from("a"), String::from("bb")]);
        round_trip(Some(42u32));
        round_trip::<Option<u32>>(None);
        round_trip(Some(vec![Some(1u8), None]));
    }

    #[test]
    fn tuples_and_arrays() {
        round_trip((1u8,));
        round_trip((1u64, String::from("x")));
        round_trip((1u64, 2.0f64, true, String::from("y"), vec![1u32]));
        round_trip([1.0f32, 2.0, 3.0]);
        round_trip([0u8; 16]);
    }

    #[test]
    fn bool_rejects_other_bytes() {
        assert!(matches!(
            decode_from_slice::<bool>(&[2]),
            Err(DecodeError::InvalidDiscriminant { .. })
        ));
    }

    #[test]
    fn option_rejects_bad_tag() {
        assert!(matches!(
            decode_from_slice::<Option<u8>>(&[7, 0]),
            Err(DecodeError::InvalidDiscriminant { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_to_vec(&5u32);
        bytes.push(0);
        assert!(matches!(
            decode_from_slice::<u32>(&bytes),
            Err(DecodeError::InvalidValue { .. })
        ));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // A Vec<u64> claiming 2^40 elements must not allocate.
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 1 << 40);
        assert!(matches!(
            decode_from_slice::<Vec<u64>>(&bytes),
            Err(DecodeError::LengthOverflow { .. })
        ));
        assert!(matches!(
            decode_from_slice::<String>(&bytes),
            Err(DecodeError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn truncated_collection_rejected() {
        let bytes = encode_to_vec(&vec![1u64, 2, 3]);
        assert!(matches!(
            decode_from_slice::<Vec<u64>>(&bytes[..bytes.len() - 1]),
            Err(DecodeError::UnexpectedEnd { .. })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 2);
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(
            decode_from_slice::<String>(&bytes),
            Err(DecodeError::InvalidUtf8)
        );
    }

    #[test]
    fn out_of_range_narrow_integer_rejected() {
        let bytes = encode_to_vec(&(u16::MAX as u64 + 1));
        assert!(matches!(
            decode_from_slice::<u16>(&bytes),
            Err(DecodeError::InvalidValue { .. })
        ));
    }

    #[test]
    fn encode_into_appends_and_reuses_capacity() {
        let mut scratch = Vec::new();
        encode_into(&7u32, &mut scratch);
        let first = scratch.clone();
        scratch.clear();
        encode_into(&7u32, &mut scratch);
        assert_eq!(scratch, first);
        let cap = scratch.capacity();
        scratch.clear();
        encode_into(&9u32, &mut scratch);
        assert_eq!(scratch.capacity(), cap, "cleared scratch must not realloc");
        // Appending after existing content preserves the prefix.
        encode_into(&true, &mut scratch);
        assert_eq!(
            decode_from_slice::<(u32, bool)>(&scratch).unwrap(),
            (9, true)
        );
    }

    #[test]
    fn size_hints_are_exact_for_fixed_width_shapes() {
        // Hints for the shapes that dominate hot-path traffic should be
        // exact so encode_to_vec allocates once.
        fn exact<T: Wire>(v: T) {
            assert_eq!(v.size_hint(), encoded_len(&v), "hint not exact");
        }
        exact(0u64);
        exact(u64::MAX);
        exact(-300i64);
        exact(1.5f64);
        exact([1.0f32; 16]);
        exact((1u64, 2u32, 3.0f64));
        exact(Some(7u64));
        exact(Option::<u64>::None);
        exact(String::from("camera-7"));
        exact(vec![1u8, 2, 3]);
    }

    #[test]
    fn small_values_encode_small() {
        assert_eq!(encoded_len(&1u64), 1);
        assert_eq!(encoded_len(&300u64), 2);
        assert_eq!(encoded_len(&(-1i64)), 1);
        assert_eq!(encoded_len(&String::from("ab")), 3);
    }
}
