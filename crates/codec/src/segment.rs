//! The sealed-segment frame: the structural wire/storage format of one
//! immutable archive segment.
//!
//! A segment freezes one closed time slice of a worker's shard into a
//! columnar payload: per occupied grid cell one independently decodable
//! block (the observation-batch columnar encoding), laid out
//! back-to-back, plus a footer directory mapping each cell to its block's
//! `(offset, len, count, checksum)`. The directory is what makes sealed
//! reads cell-selective — a range query decodes only the blocks of the
//! cells it overlaps — and what lets repair split a segment at cell
//! boundaries by byte copy, without decoding untouched blocks.
//!
//! This module defines only the *structure* and its validation; the
//! semantic layer (sealing slices, scanning, splitting) lives in
//! `stcam-index`. Checksums are order-independent XOR folds of a
//! per-observation mix, so a segment rebuilt from the same rows in any
//! order digests identically.

use bytes::{Buf, BufMut};
use stcam_geo::TimeInterval;

use crate::varint;
use crate::wire::MAX_SEQ_LEN;
use crate::{DecodeError, Wire};

/// First byte of every encoded segment frame.
pub const SEGMENT_MAGIC: u8 = 0xA7;
/// Format version; bumped on any layout change.
pub const SEGMENT_VERSION: u8 = 1;

/// One directory entry of a segment: a cell's block within the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentBlock {
    /// Packed grid cell (`row * cols + col`) of the index grid the
    /// segment was sealed under.
    pub cell: u32,
    /// Byte offset of the block in the payload.
    pub offset: u32,
    /// Byte length of the block.
    pub len: u32,
    /// Observations encoded in the block.
    pub count: u32,
    /// Order-independent XOR fold of the block's observation checksums.
    pub checksum: u64,
}

/// The encoded form of one sealed segment: header, footer directory, and
/// the concatenated per-cell blocks.
///
/// Invariants enforced on decode (and asserted by [`validate`](Self::validate)):
/// blocks are sorted strictly by cell, tile the payload exactly (first
/// offset 0, each block starts where the previous ended, last block ends
/// at `payload.len()`), the block counts sum to `count`, and the block
/// checksums XOR to `checksum`.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentFrame {
    /// The time-slice number the segment covers.
    pub number: u64,
    /// The slice window `[number·len, (number+1)·len)`.
    pub window: TimeInterval,
    /// Total observations across all blocks.
    pub count: u64,
    /// XOR fold of all block checksums.
    pub checksum: u64,
    /// Per-cell directory, sorted by cell.
    pub directory: Vec<SegmentBlock>,
    /// Concatenated per-cell columnar blocks.
    pub payload: Vec<u8>,
}

impl SegmentFrame {
    /// The payload bytes of directory entry `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range (the directory invariants
    /// guarantee in-range entries slice validly).
    pub fn block_payload(&self, i: usize) -> &[u8] {
        let b = &self.directory[i];
        &self.payload[b.offset as usize..(b.offset + b.len) as usize]
    }

    /// Checks the structural invariants, returning the violated one.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidValue`] naming the violated
    /// invariant.
    pub fn validate(&self) -> Result<(), DecodeError> {
        let fail = |reason: &'static str| Err(DecodeError::InvalidValue { reason });
        let mut cursor: u64 = 0;
        let mut count: u64 = 0;
        let mut checksum: u64 = 0;
        let mut prev_cell: Option<u32> = None;
        for b in &self.directory {
            if prev_cell.is_some_and(|p| b.cell <= p) {
                return fail("segment directory not sorted by cell");
            }
            prev_cell = Some(b.cell);
            if u64::from(b.offset) != cursor {
                return fail("segment blocks do not tile the payload");
            }
            if b.count == 0 {
                return fail("empty block in segment directory");
            }
            cursor += u64::from(b.len);
            count += u64::from(b.count);
            checksum ^= b.checksum;
        }
        if cursor != self.payload.len() as u64 {
            return fail("segment payload length mismatch");
        }
        if count != self.count {
            return fail("segment count does not match directory");
        }
        if checksum != self.checksum {
            return fail("segment checksum does not match directory");
        }
        Ok(())
    }
}

impl Wire for SegmentBlock {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.cell.encode(buf);
        self.offset.encode(buf);
        self.len.encode(buf);
        self.count.encode(buf);
        // Checksums are high-entropy: fixed width beats a varint.
        buf.put_slice(&self.checksum.to_le_bytes());
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        let cell = u32::decode(buf)?;
        let offset = u32::decode(buf)?;
        let len = u32::decode(buf)?;
        let count = u32::decode(buf)?;
        if buf.remaining() < 8 {
            return Err(DecodeError::UnexpectedEnd {
                context: "segment block checksum",
            });
        }
        let mut raw = [0u8; 8];
        buf.copy_to_slice(&mut raw);
        let checksum = u64::from_le_bytes(raw);
        Ok(SegmentBlock {
            cell,
            offset,
            len,
            count,
            checksum,
        })
    }

    fn size_hint(&self) -> usize {
        self.cell.size_hint()
            + self.offset.size_hint()
            + self.len.size_hint()
            + self.count.size_hint()
            + 8
    }
}

impl Wire for SegmentFrame {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(SEGMENT_MAGIC);
        buf.put_u8(SEGMENT_VERSION);
        self.number.encode(buf);
        self.window.encode(buf);
        self.count.encode(buf);
        buf.put_slice(&self.checksum.to_le_bytes());
        self.directory.encode(buf);
        varint::write_u64(buf, self.payload.len() as u64);
        buf.put_slice(&self.payload);
    }

    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        if buf.remaining() < 2 {
            return Err(DecodeError::UnexpectedEnd {
                context: "segment header",
            });
        }
        if buf.get_u8() != SEGMENT_MAGIC {
            return Err(DecodeError::InvalidValue {
                reason: "bad segment magic",
            });
        }
        let version = buf.get_u8();
        if version != SEGMENT_VERSION {
            return Err(DecodeError::InvalidDiscriminant {
                type_name: "SegmentFrame version",
                value: version as u64,
            });
        }
        let number = u64::decode(buf)?;
        let window = TimeInterval::decode(buf)?;
        let count = u64::decode(buf)?;
        if buf.remaining() < 8 {
            return Err(DecodeError::UnexpectedEnd {
                context: "segment checksum",
            });
        }
        let mut raw = [0u8; 8];
        buf.copy_to_slice(&mut raw);
        let checksum = u64::from_le_bytes(raw);
        let directory = Vec::decode(buf)?;
        let payload_len = varint::read_u64(buf)?;
        if payload_len > MAX_SEQ_LEN {
            return Err(DecodeError::LengthOverflow {
                declared: payload_len,
                max: MAX_SEQ_LEN,
            });
        }
        let payload_len = payload_len as usize;
        if buf.remaining() < payload_len {
            return Err(DecodeError::UnexpectedEnd {
                context: "segment payload",
            });
        }
        let mut payload = vec![0u8; payload_len];
        buf.copy_to_slice(&mut payload);
        let frame = SegmentFrame {
            number,
            window,
            count,
            checksum,
            directory,
            payload,
        };
        frame.validate()?;
        Ok(frame)
    }

    fn size_hint(&self) -> usize {
        2 + self.number.size_hint()
            + self.window.size_hint()
            + self.count.size_hint()
            + 8
            + varint::len_u64(self.directory.len() as u64)
            + self.directory.iter().map(Wire::size_hint).sum::<usize>()
            + varint::len_u64(self.payload.len() as u64)
            + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_from_slice, encode_to_vec};
    use stcam_geo::Timestamp;

    fn frame() -> SegmentFrame {
        SegmentFrame {
            number: 4,
            window: TimeInterval::new(Timestamp::from_secs(40), Timestamp::from_secs(50)),
            count: 3,
            checksum: 0xDEAD ^ 0xBEEF,
            directory: vec![
                SegmentBlock {
                    cell: 2,
                    offset: 0,
                    len: 5,
                    count: 1,
                    checksum: 0xDEAD,
                },
                SegmentBlock {
                    cell: 9,
                    offset: 5,
                    len: 3,
                    count: 2,
                    checksum: 0xBEEF,
                },
            ],
            payload: vec![1, 2, 3, 4, 5, 6, 7, 8],
        }
    }

    #[test]
    fn frame_round_trips() {
        let f = frame();
        let bytes = encode_to_vec(&f);
        assert_eq!(decode_from_slice::<SegmentFrame>(&bytes).unwrap(), f);
    }

    #[test]
    fn empty_frame_round_trips() {
        let f = SegmentFrame {
            number: 0,
            window: TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(10)),
            count: 0,
            checksum: 0,
            directory: vec![],
            payload: vec![],
        };
        let bytes = encode_to_vec(&f);
        assert_eq!(decode_from_slice::<SegmentFrame>(&bytes).unwrap(), f);
    }

    #[test]
    fn block_payload_slices_by_directory() {
        let f = frame();
        assert_eq!(f.block_payload(0), &[1, 2, 3, 4, 5]);
        assert_eq!(f.block_payload(1), &[6, 7, 8]);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_to_vec(&frame());
        bytes[0] ^= 0xFF;
        assert!(decode_from_slice::<SegmentFrame>(&bytes).is_err());
    }

    #[test]
    fn unknown_version_rejected() {
        let mut bytes = encode_to_vec(&frame());
        bytes[1] = SEGMENT_VERSION + 1;
        assert!(matches!(
            decode_from_slice::<SegmentFrame>(&bytes),
            Err(DecodeError::InvalidDiscriminant { .. })
        ));
    }

    #[test]
    fn unsorted_directory_rejected() {
        let mut f = frame();
        f.directory.swap(0, 1);
        let b = f.directory[0];
        f.directory[0] = SegmentBlock { offset: 0, ..b };
        let b = f.directory[1];
        f.directory[1] = SegmentBlock { offset: 3, ..b };
        let bytes = encode_to_vec(&f);
        assert!(decode_from_slice::<SegmentFrame>(&bytes).is_err());
    }

    #[test]
    fn gap_in_payload_rejected() {
        let mut f = frame();
        f.directory[1].offset = 6; // skips byte 5
        let bytes = encode_to_vec(&f);
        assert!(decode_from_slice::<SegmentFrame>(&bytes).is_err());
    }

    #[test]
    fn count_mismatch_rejected() {
        let mut f = frame();
        f.count = 99;
        let bytes = encode_to_vec(&f);
        assert!(decode_from_slice::<SegmentFrame>(&bytes).is_err());
    }

    #[test]
    fn checksum_mismatch_rejected() {
        let mut f = frame();
        f.checksum ^= 1;
        let bytes = encode_to_vec(&f);
        assert!(decode_from_slice::<SegmentFrame>(&bytes).is_err());
    }

    #[test]
    fn truncated_frame_rejected() {
        let bytes = encode_to_vec(&frame());
        for cut in 0..bytes.len() {
            assert!(
                decode_from_slice::<SegmentFrame>(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn hostile_payload_length_rejected() {
        let f = frame();
        let mut bytes = Vec::new();
        bytes.push(SEGMENT_MAGIC);
        bytes.push(SEGMENT_VERSION);
        f.number.encode(&mut bytes);
        f.window.encode(&mut bytes);
        f.count.encode(&mut bytes);
        bytes.put_slice(&f.checksum.to_le_bytes());
        f.directory.encode(&mut bytes);
        varint::write_u64(&mut bytes, 1 << 40); // absurd payload length
        assert!(matches!(
            decode_from_slice::<SegmentFrame>(&bytes),
            Err(DecodeError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn size_hint_is_exact() {
        let f = frame();
        assert_eq!(f.size_hint(), encode_to_vec(&f).len());
    }
}
