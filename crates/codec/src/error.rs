//! Decoding errors.

use std::error::Error;
use std::fmt;

/// An error encountered while decoding wire data.
///
/// Encoding is infallible by construction (every in-memory value has a wire
/// form); decoding validates its input and reports the first violation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The buffer ended before the value was complete.
    UnexpectedEnd {
        /// What was being decoded when input ran out.
        context: &'static str,
    },
    /// A varint ran past its maximum width (corrupt or adversarial input).
    VarintOverflow,
    /// A length prefix exceeded the configured maximum.
    LengthOverflow {
        /// The declared length.
        declared: u64,
        /// The maximum permitted.
        max: u64,
    },
    /// String data was not valid UTF-8.
    InvalidUtf8,
    /// An enum discriminant had no corresponding variant.
    InvalidDiscriminant {
        /// The type whose discriminant was invalid.
        type_name: &'static str,
        /// The offending discriminant value.
        value: u64,
    },
    /// A frame checksum did not match its payload.
    ChecksumMismatch,
    /// A frame did not start with the expected magic bytes.
    BadMagic,
    /// A decoded value violated a domain invariant (e.g. a reversed
    /// time interval).
    InvalidValue {
        /// Description of the violated invariant.
        reason: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd { context } => {
                write!(f, "input ended while decoding {context}")
            }
            DecodeError::VarintOverflow => write!(f, "varint exceeded maximum width"),
            DecodeError::LengthOverflow { declared, max } => {
                write!(f, "declared length {declared} exceeds maximum {max}")
            }
            DecodeError::InvalidUtf8 => write!(f, "string data was not valid utf-8"),
            DecodeError::InvalidDiscriminant { type_name, value } => {
                write!(f, "invalid discriminant {value} for {type_name}")
            }
            DecodeError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            DecodeError::BadMagic => write!(f, "frame did not start with magic bytes"),
            DecodeError::InvalidValue { reason } => write!(f, "invalid value: {reason}"),
        }
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs = [
            DecodeError::UnexpectedEnd { context: "u64" },
            DecodeError::VarintOverflow,
            DecodeError::LengthOverflow {
                declared: 10,
                max: 5,
            },
            DecodeError::InvalidUtf8,
            DecodeError::InvalidDiscriminant {
                type_name: "Foo",
                value: 9,
            },
            DecodeError::ChecksumMismatch,
            DecodeError::BadMagic,
            DecodeError::InvalidValue {
                reason: "reversed interval",
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<DecodeError>();
    }
}
