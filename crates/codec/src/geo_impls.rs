//! [`Wire`] implementations for the `stcam-geo` types.
//!
//! These live here (rather than in `stcam-geo`) so that the geometry crate
//! stays dependency-free; orphan rules permit it because this crate owns
//! the `Wire` trait.

use bytes::{Buf, BufMut};
use stcam_geo::{BBox, CellId, Duration, GeoPoint, Point, TimeInterval, Timestamp};

use crate::{DecodeError, Wire};

impl Wire for Point {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.x.encode(buf);
        self.y.encode(buf);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(Point::new(f64::decode(buf)?, f64::decode(buf)?))
    }
    fn size_hint(&self) -> usize {
        16
    }
}

impl Wire for GeoPoint {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.lat.encode(buf);
        self.lon.encode(buf);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        let lat = f64::decode(buf)?;
        let lon = f64::decode(buf)?;
        if !(-90.0..=90.0).contains(&lat) {
            return Err(DecodeError::InvalidValue {
                reason: "latitude out of range",
            });
        }
        Ok(GeoPoint::new(lat, lon))
    }
}

impl Wire for BBox {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.min.encode(buf);
        self.max.encode(buf);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(BBox::new(Point::decode(buf)?, Point::decode(buf)?))
    }
    fn size_hint(&self) -> usize {
        32
    }
}

impl Wire for CellId {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.col.encode(buf);
        self.row.encode(buf);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(CellId::new(u32::decode(buf)?, u32::decode(buf)?))
    }
}

impl Wire for Timestamp {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.as_millis().encode(buf);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(Timestamp::from_millis(u64::decode(buf)?))
    }
    fn size_hint(&self) -> usize {
        self.as_millis().size_hint()
    }
}

impl Wire for Duration {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.as_millis().encode(buf);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(Duration::from_millis(u64::decode(buf)?))
    }
    fn size_hint(&self) -> usize {
        self.as_millis().size_hint()
    }
}

impl Wire for TimeInterval {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.start().encode(buf);
        self.end().encode(buf);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        let start = Timestamp::decode(buf)?;
        let end = Timestamp::decode(buf)?;
        if start > end {
            return Err(DecodeError::InvalidValue {
                reason: "time interval start after end",
            });
        }
        Ok(TimeInterval::new(start, end))
    }
    fn size_hint(&self) -> usize {
        self.start().size_hint() + self.end().size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_from_slice, encode_to_vec};

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_to_vec(&v);
        assert_eq!(decode_from_slice::<T>(&bytes).unwrap(), v);
    }

    #[test]
    fn geo_types_round_trip() {
        round_trip(Point::new(1.5, -2.5));
        round_trip(GeoPoint::new(33.7, -84.4));
        round_trip(BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 5.0)));
        round_trip(CellId::new(17, 23));
        round_trip(Timestamp::from_millis(123_456));
        round_trip(Duration::from_secs(5));
        round_trip(TimeInterval::new(
            Timestamp::from_secs(1),
            Timestamp::from_secs(2),
        ));
    }

    #[test]
    fn reversed_interval_rejected() {
        // Hand-build a wire image with start > end.
        let mut bytes = encode_to_vec(&Timestamp::from_secs(5));
        bytes.extend(encode_to_vec(&Timestamp::from_secs(1)));
        assert!(matches!(
            decode_from_slice::<TimeInterval>(&bytes),
            Err(DecodeError::InvalidValue { .. })
        ));
    }

    #[test]
    fn bad_latitude_rejected() {
        let mut bytes = encode_to_vec(&200.0f64);
        bytes.extend(encode_to_vec(&10.0f64));
        assert!(matches!(
            decode_from_slice::<GeoPoint>(&bytes),
            Err(DecodeError::InvalidValue { .. })
        ));
    }

    #[test]
    fn cell_id_compact() {
        // Small cell coordinates take 2 bytes total.
        assert_eq!(encode_to_vec(&CellId::new(3, 7)).len(), 2);
    }
}
