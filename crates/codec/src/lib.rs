//! Deterministic binary wire format for messages between `stcam` cluster
//! nodes.
//!
//! The distributed framework accounts for every byte that crosses the
//! (simulated) network — the communication-cost experiment (Table 2 of the
//! evaluation) reports exact wire sizes — so serialization is implemented
//! from scratch rather than delegated to an opaque third-party format.
//!
//! * [`Wire`] — the encode/decode trait, implemented for all primitives,
//!   `String`, `Vec<T>`, `Option<T>`, tuples, and the `stcam-geo` types.
//! * [`varint`] — LEB128 variable-length integers with ZigZag for signed
//!   values; small ids and counts dominate the traffic, so this roughly
//!   halves message sizes compared to fixed-width encoding.
//! * [`frame`] — length-prefixed, CRC-32-protected framing for transport.
//! * [`segment`] — the sealed-segment frame: per-cell columnar blocks
//!   with a footer directory, the at-rest/wire form of the index's
//!   immutable archive tier.
//!
//! # Example
//!
//! ```
//! use stcam_codec::{decode_from_slice, encode_to_vec, Wire};
//!
//! let msg = (42u64, String::from("camera-7"), vec![1.5f64, 2.5]);
//! let bytes = encode_to_vec(&msg);
//! let back: (u64, String, Vec<f64>) = decode_from_slice(&bytes)?;
//! assert_eq!(back, msg);
//! # Ok::<(), stcam_codec::DecodeError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
pub mod frame;
mod geo_impls;
pub mod segment;
pub mod varint;
mod wire;

pub use error::DecodeError;
pub use frame::{read_frame, write_frame, FrameHeader, MAX_FRAME_LEN};
pub use segment::{SegmentBlock, SegmentFrame, SEGMENT_MAGIC, SEGMENT_VERSION};
pub use wire::{decode_from_slice, encode_into, encode_to_vec, encoded_len, Wire, MAX_SEQ_LEN};
