//! Property-based tests: the codec round-trips arbitrary values and never
//! panics on arbitrary input bytes.

use bytes::BytesMut;
use proptest::prelude::*;
use stcam_codec::{decode_from_slice, encode_to_vec, frame, varint, Wire};
use stcam_geo::{BBox, CellId, Point, TimeInterval, Timestamp};

fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) -> Result<(), TestCaseError> {
    let bytes = encode_to_vec(v);
    let back: T = decode_from_slice(&bytes).expect("decode of fresh encode");
    prop_assert_eq!(&back, v);
    Ok(())
}

proptest! {
    #[test]
    fn varint_round_trip(v in any::<u64>()) {
        let mut buf = BytesMut::new();
        varint::write_u64(&mut buf, v);
        prop_assert_eq!(buf.len(), varint::len_u64(v));
        let mut slice = &buf[..];
        prop_assert_eq!(varint::read_u64(&mut slice).unwrap(), v);
        prop_assert!(slice.is_empty());
    }

    #[test]
    fn zigzag_round_trip(v in any::<i64>()) {
        prop_assert_eq!(varint::unzigzag(varint::zigzag(v)), v);
    }

    #[test]
    fn varint_ordering_by_magnitude(a in any::<u64>(), b in any::<u64>()) {
        // Wider values never take fewer bytes.
        if a <= b {
            prop_assert!(varint::len_u64(a) <= varint::len_u64(b));
        }
    }

    #[test]
    fn scalar_round_trips(v in any::<u64>(), w in any::<i64>(), x in any::<f64>()) {
        round_trip(&v)?;
        round_trip(&w)?;
        if !x.is_nan() {
            round_trip(&x)?;
        }
    }

    #[test]
    fn compound_round_trips(
        s in ".*",
        v in prop::collection::vec(any::<u32>(), 0..100),
        o in proptest::option::of(any::<u64>()),
    ) {
        round_trip(&s.to_string())?;
        round_trip(&v)?;
        round_trip(&o)?;
        round_trip(&(s.to_string(), v, o))?;
    }

    #[test]
    fn geo_round_trips(
        x in -1e6..1e6f64, y in -1e6..1e6f64,
        col in any::<u32>(), row in any::<u32>(),
        t0 in 0u64..u64::MAX / 2, dt in 0u64..1_000_000,
    ) {
        round_trip(&Point::new(x, y))?;
        round_trip(&BBox::from_corners(Point::new(x, y), Point::new(y, x)))?;
        round_trip(&CellId::new(col, row))?;
        round_trip(&TimeInterval::new(
            Timestamp::from_millis(t0),
            Timestamp::from_millis(t0 + dt),
        ))?;
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Any decode must return Ok or Err, never panic or hang.
        let _ = decode_from_slice::<u64>(&bytes);
        let _ = decode_from_slice::<String>(&bytes);
        let _ = decode_from_slice::<Vec<u64>>(&bytes);
        let _ = decode_from_slice::<Option<(u64, String)>>(&bytes);
        let _ = decode_from_slice::<TimeInterval>(&bytes);
        let _ = decode_from_slice::<Vec<(CellId, Vec<f32>)>>(&bytes);
    }

    #[test]
    fn frame_round_trip(payload in prop::collection::vec(any::<u8>(), 0..2048)) {
        let mut buf = BytesMut::new();
        frame::write_frame(&mut buf, &payload);
        let got = frame::read_frame(&mut buf).unwrap().unwrap();
        prop_assert_eq!(got, payload);
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn frame_single_bit_flip_detected(
        payload in prop::collection::vec(any::<u8>(), 1..256),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let mut buf = BytesMut::new();
        frame::write_frame(&mut buf, &payload);
        let idx = flip_byte.index(buf.len());
        buf[idx] ^= 1 << flip_bit;
        // A flip anywhere is either detected as an error or (if it hit the
        // length field making the frame appear longer) reported incomplete.
        // It must never yield a successfully-decoded *different* payload.
        if let Ok(Some(p)) = frame::read_frame(&mut buf) {
            prop_assert_eq!(p, payload);
        }
    }

    #[test]
    fn frame_reader_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = BytesMut::from(&bytes[..]);
        let _ = frame::read_frame(&mut buf);
    }
}
