//! Property-based tests for the camera-network layer.

use proptest::prelude::*;
use stcam_camnet::{Camera, CameraId, CameraNetwork, Observation, Signature, TransitionModel};
use stcam_codec::{decode_from_slice, encode_to_vec};
use stcam_geo::{BBox, Duration, Point, Timestamp};
use stcam_world::{EntityClass, EntityId, RoadNetwork};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn camera_sees_implies_within_range_and_bbox(
        cx in -1000.0..1000.0f64, cy in -1000.0..1000.0f64,
        heading in -4.0..4.0f64,
        fov in 0.2..3.0f64,
        range in 10.0..500.0f64,
        px in -2000.0..2000.0f64, py in -2000.0..2000.0f64,
    ) {
        let cam = Camera::new(CameraId(0), Point::new(cx, cy), heading, fov, range);
        let p = Point::new(px, py);
        if cam.sees(p) {
            prop_assert!(cam.position().distance(p) <= range + 1e-9);
            prop_assert!(cam.coverage_bbox().inflated(1e-6).contains(p));
        }
    }

    #[test]
    fn coverage_polygon_is_subset_of_sees(
        heading in -4.0..4.0f64,
        fov in 0.2..3.0f64,
        range in 10.0..500.0f64,
        px in -600.0..600.0f64, py in -600.0..600.0f64,
    ) {
        // The tessellated polygon inscribes the true sector, so polygon
        // containment must imply analytic visibility.
        let cam = Camera::new(CameraId(0), Point::ORIGIN, heading, fov, range);
        let p = Point::new(px, py);
        if cam.coverage().contains(p) {
            prop_assert!(cam.sees(p));
        }
    }

    #[test]
    fn network_coverage_lookup_matches_scan(
        n_cams in 1usize..40,
        seed in any::<u64>(),
        px in -100.0..2100.0f64, py in -100.0..2100.0f64,
    ) {
        let roads = RoadNetwork::grid(
            BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0)),
            200.0,
        );
        let net = CameraNetwork::deploy_on_roads(&roads, n_cams, seed);
        let p = Point::new(px, py);
        let mut via_lookup = net.cameras_covering(p);
        via_lookup.sort();
        let mut via_scan: Vec<CameraId> = net
            .cameras()
            .filter(|c| c.sees(p))
            .map(Camera::id)
            .collect();
        via_scan.sort();
        prop_assert_eq!(via_lookup, via_scan);
    }

    #[test]
    fn transition_windows_monotone_in_distance(
        n_cams in 10usize..60,
        seed in any::<u64>(),
    ) {
        let roads = RoadNetwork::grid(
            BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0)),
            200.0,
        );
        let net = CameraNetwork::deploy_on_roads(&roads, n_cams, seed);
        let model = TransitionModel::from_network(&net, &roads);
        // For any adjacent pair: windows are valid and the upper bound
        // grows with measured distance for a fixed class.
        let mut pairs: Vec<(f64, Duration)> = Vec::new();
        for cam in net.cameras() {
            for &other in net.adjacent(cam.id()) {
                if let (Some(d), Some((min, max))) = (
                    model.distance(cam.id(), other),
                    model.window(cam.id(), other, EntityClass::Car),
                ) {
                    prop_assert!(min <= max);
                    prop_assert!(d > 0.0);
                    pairs.push((d, max));
                }
            }
        }
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        for w in pairs.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "window shrank with distance");
        }
    }

    #[test]
    fn observation_wire_round_trip(
        cam in 0u32..1000,
        seq in 0u64..1_000_000,
        t in 0u64..10_000_000,
        x in -1e5..1e5f64, y in -1e5..1e5f64,
        class in 0u8..4,
        entity in proptest::option::of(0u64..1_000_000),
    ) {
        let obs = Observation {
            id: stcam_camnet::ObservationId::compose(CameraId(cam), seq),
            camera: CameraId(cam),
            time: Timestamp::from_millis(t),
            position: Point::new(x, y),
            class: EntityClass::from_u8(class).expect("class"),
            signature: Signature::latent_for_entity(seq),
            truth: entity.map(EntityId),
        };
        let bytes = encode_to_vec(&obs);
        prop_assert_eq!(decode_from_slice::<Observation>(&bytes).expect("decode"), obs);
    }

    #[test]
    fn signature_distance_is_a_metric(
        a in 0u64..10_000, b in 0u64..10_000, c in 0u64..10_000,
    ) {
        let sa = Signature::latent_for_entity(a);
        let sb = Signature::latent_for_entity(b);
        let sc = Signature::latent_for_entity(c);
        prop_assert_eq!(sa.distance(&sb), sb.distance(&sa));
        prop_assert!(sa.distance(&sa) == 0.0);
        prop_assert!(sa.distance(&sc) <= sa.distance(&sb) + sb.distance(&sc) + 1e-5);
        if a != b {
            prop_assert!(sa.distance(&sb) > 0.0);
        }
    }
}
