//! Wire-format implementations for camera-network types.

use bytes::{Buf, BufMut};
use stcam_codec::{DecodeError, Wire};
use stcam_geo::{Point, Timestamp};
use stcam_world::{EntityClass, EntityId};

use crate::camera::CameraId;
use crate::observation::{Observation, ObservationId};
use crate::signature::{Signature, SIGNATURE_DIM};

impl Wire for CameraId {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.0.encode(buf);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(CameraId(u32::decode(buf)?))
    }
    fn size_hint(&self) -> usize {
        self.0.size_hint()
    }
}

impl Wire for ObservationId {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.0.encode(buf);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        Ok(ObservationId(u64::decode(buf)?))
    }
    fn size_hint(&self) -> usize {
        self.0.size_hint()
    }
}

impl Wire for Signature {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        for v in self.values() {
            v.encode(buf);
        }
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        let mut values = [0f32; SIGNATURE_DIM];
        for v in &mut values {
            *v = f32::decode(buf)?;
        }
        Ok(Signature::new(values))
    }
    fn size_hint(&self) -> usize {
        4 * SIGNATURE_DIM
    }
}

impl Wire for Observation {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        self.id.encode(buf);
        self.camera.encode(buf);
        self.time.encode(buf);
        self.position.encode(buf);
        self.class.as_u8().encode(buf);
        self.signature.encode(buf);
        self.truth.map(|e| e.0).encode(buf);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        let id = ObservationId::decode(buf)?;
        let camera = CameraId::decode(buf)?;
        let time = Timestamp::decode(buf)?;
        let position = Point::decode(buf)?;
        let class_byte = u8::decode(buf)?;
        let class = EntityClass::from_u8(class_byte).ok_or(DecodeError::InvalidDiscriminant {
            type_name: "EntityClass",
            value: class_byte as u64,
        })?;
        let signature = Signature::decode(buf)?;
        let truth = Option::<u64>::decode(buf)?.map(EntityId);
        Ok(Observation {
            id,
            camera,
            time,
            position,
            class,
            signature,
            truth,
        })
    }
    fn size_hint(&self) -> usize {
        self.id.size_hint()
            + self.camera.size_hint()
            + self.time.size_hint()
            + self.position.size_hint()
            + 1
            + self.signature.size_hint()
            + self.truth.map(|e| e.0).size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcam_codec::{decode_from_slice, encode_to_vec};

    fn sample_observation() -> Observation {
        Observation {
            id: ObservationId::compose(CameraId(3), 99),
            camera: CameraId(3),
            time: Timestamp::from_millis(123_456),
            position: Point::new(105.5, -2.25),
            class: EntityClass::Truck,
            signature: Signature::latent_for_entity(42),
            truth: Some(EntityId(42)),
        }
    }

    #[test]
    fn observation_round_trip() {
        let obs = sample_observation();
        let bytes = encode_to_vec(&obs);
        let back: Observation = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, obs);
    }

    #[test]
    fn false_positive_round_trip() {
        let mut obs = sample_observation();
        obs.truth = None;
        let bytes = encode_to_vec(&obs);
        let back: Observation = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, obs);
    }

    #[test]
    fn invalid_class_rejected() {
        let mut bytes = encode_to_vec(&sample_observation());
        // The class byte follows id + camera + time + position. Find and
        // corrupt it by re-encoding with a raw builder instead: simplest
        // is to decode-modify-encode manually, so here we locate it by
        // structure: id(varint) camera(varint) time(varint) pos(16 bytes).
        let id_len = encode_to_vec(&sample_observation().id).len();
        let cam_len = encode_to_vec(&sample_observation().camera).len();
        let time_len = encode_to_vec(&sample_observation().time).len();
        let class_off = id_len + cam_len + time_len + 16;
        bytes[class_off] = 99;
        assert!(matches!(
            decode_from_slice::<Observation>(&bytes),
            Err(DecodeError::InvalidDiscriminant { .. })
        ));
    }

    #[test]
    fn observation_wire_size_is_compact() {
        // id + camera + time + position + class + 16×f32 + truth tag/val:
        // comfortably under 100 bytes for realistic values.
        let bytes = encode_to_vec(&sample_observation());
        assert!(bytes.len() < 100, "observation took {} bytes", bytes.len());
    }

    #[test]
    fn vec_of_observations_round_trips() {
        let batch = vec![sample_observation(); 10];
        let bytes = encode_to_vec(&batch);
        let back: Vec<Observation> = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, batch);
    }
}
