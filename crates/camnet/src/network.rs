//! Camera deployments, coverage lookup, adjacency, transition times.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stcam_geo::{BBox, Duration, GridSpec, Point};
use stcam_world::{EntityClass, RoadNetwork};

use crate::camera::{Camera, CameraId};

/// A deployment of cameras over a region, with fast point-to-camera
/// coverage lookup and the adjacency graph used by cross-camera hand-off.
#[derive(Debug)]
pub struct CameraNetwork {
    cameras: Vec<Camera>,
    by_id: HashMap<CameraId, usize>,
    grid: GridSpec,
    buckets: Vec<Vec<usize>>,
    adjacency: HashMap<CameraId, Vec<CameraId>>,
}

impl CameraNetwork {
    /// Default field of view (60°).
    pub const DEFAULT_FOV: f64 = std::f64::consts::FRAC_PI_3;

    /// Builds a network from explicit cameras.
    ///
    /// Adjacency links any two cameras whose mounts are within
    /// `adjacency_radius` metres; pass the road spacing × ~2.5 for
    /// intersection-mounted deployments.
    ///
    /// # Panics
    ///
    /// Panics if `cameras` is empty or contains duplicate ids.
    pub fn new(cameras: Vec<Camera>, adjacency_radius: f64) -> Self {
        assert!(
            !cameras.is_empty(),
            "a camera network needs at least one camera"
        );
        let mut by_id = HashMap::with_capacity(cameras.len());
        for (idx, cam) in cameras.iter().enumerate() {
            assert!(
                by_id.insert(cam.id(), idx).is_none(),
                "duplicate camera id {}",
                cam.id()
            );
        }
        // Coverage lookup grid: cell size on the order of a coverage
        // radius keeps candidate lists short.
        let extent = cameras
            .iter()
            .fold(BBox::EMPTY, |b, c| b.union(&c.coverage_bbox()));
        let mean_range = cameras.iter().map(Camera::range).sum::<f64>() / cameras.len() as f64;
        let grid = GridSpec::covering(extent.inflated(1.0), mean_range.max(1.0));
        let mut buckets = vec![Vec::new(); grid.cell_count() as usize];
        for (idx, cam) in cameras.iter().enumerate() {
            for cell in grid.cells_overlapping(cam.coverage_bbox()) {
                let slot = (cell.row as usize) * grid.cols() as usize + cell.col as usize;
                buckets[slot].push(idx);
            }
        }
        // Adjacency by mount distance.
        let mut adjacency: HashMap<CameraId, Vec<CameraId>> =
            cameras.iter().map(|c| (c.id(), Vec::new())).collect();
        for i in 0..cameras.len() {
            for j in (i + 1)..cameras.len() {
                let d = cameras[i].position().distance(cameras[j].position());
                if d <= adjacency_radius {
                    adjacency
                        .get_mut(&cameras[i].id())
                        .expect("present")
                        .push(cameras[j].id());
                    adjacency
                        .get_mut(&cameras[j].id())
                        .expect("present")
                        .push(cameras[i].id());
                }
            }
        }
        CameraNetwork {
            cameras,
            by_id,
            grid,
            buckets,
            adjacency,
        }
    }

    /// Deploys `n` cameras at distinct random intersections of `roads`,
    /// each looking down one of the four road directions with the default
    /// FOV and a range of 80% of the road spacing. Adjacency radius is
    /// 2.5 × spacing.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the number of intersections.
    pub fn deploy_on_roads(roads: &RoadNetwork, n: usize, seed: u64) -> Self {
        Self::deploy_weighted(roads, n, seed, |_rng, _roads| 1.0)
    }

    /// Like [`deploy_on_roads`](Self::deploy_on_roads) but intersections
    /// near any of `centers` (within `3 * sigma`) are `boost`× more likely
    /// to receive a camera — modelling the denser downtown coverage of
    /// real deployments.
    pub fn deploy_clustered(
        roads: &RoadNetwork,
        n: usize,
        seed: u64,
        centers: &[Point],
        sigma: f64,
        boost: f64,
    ) -> Self {
        Self::deploy_weighted_at(roads, n, seed, |p| {
            if centers.iter().any(|c| c.distance(p) <= 3.0 * sigma) {
                boost
            } else {
                1.0
            }
        })
    }

    fn deploy_weighted<F>(roads: &RoadNetwork, n: usize, seed: u64, _weight: F) -> Self
    where
        F: Fn(&mut StdRng, &RoadNetwork) -> f64,
    {
        Self::deploy_weighted_at(roads, n, seed, |_| 1.0)
    }

    fn deploy_weighted_at<F>(roads: &RoadNetwork, n: usize, seed: u64, weight_at: F) -> Self
    where
        F: Fn(Point) -> f64,
    {
        assert!(n > 0, "need at least one camera");
        let total = roads.intersection_count() as usize;
        assert!(
            n <= total,
            "more cameras ({n}) than intersections ({total})"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // Weighted sampling without replacement over intersections.
        let mut candidates: Vec<(u32, u32, f64)> = (0..roads.cols())
            .flat_map(|c| (0..roads.rows()).map(move |r| (c, r)))
            .map(|(c, r)| {
                let p = roads.intersection(c, r);
                (c, r, weight_at(p).max(1e-9))
            })
            .collect();
        let mut chosen = Vec::with_capacity(n);
        for _ in 0..n {
            let total_w: f64 = candidates.iter().map(|c| c.2).sum();
            let mut draw = rng.gen_range(0.0..total_w);
            let mut pick = candidates.len() - 1;
            for (i, c) in candidates.iter().enumerate() {
                if draw < c.2 {
                    pick = i;
                    break;
                }
                draw -= c.2;
            }
            chosen.push(candidates.swap_remove(pick));
        }
        let range = roads.spacing() * 0.8;
        let cameras: Vec<Camera> = chosen
            .iter()
            .enumerate()
            .map(|(i, &(c, r, _))| {
                let heading = std::f64::consts::FRAC_PI_2 * rng.gen_range(0..4) as f64;
                Camera::new(
                    CameraId(i as u32),
                    roads.intersection(c, r),
                    heading,
                    Self::DEFAULT_FOV,
                    range,
                )
            })
            .collect();
        CameraNetwork::new(cameras, roads.spacing() * 2.5)
    }

    /// Number of cameras.
    pub fn len(&self) -> usize {
        self.cameras.len()
    }

    /// `false` always — construction rejects empty networks — provided for
    /// API completeness.
    pub fn is_empty(&self) -> bool {
        self.cameras.is_empty()
    }

    /// Iterates over all cameras.
    pub fn cameras(&self) -> impl Iterator<Item = &Camera> {
        self.cameras.iter()
    }

    /// The camera at dense index `idx` (stable for the network's life).
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    pub fn camera_by_index(&self, idx: usize) -> &Camera {
        &self.cameras[idx]
    }

    /// Looks up a camera by id.
    pub fn get(&self, id: CameraId) -> Option<&Camera> {
        self.by_id.get(&id).map(|&i| &self.cameras[i])
    }

    /// Indices of cameras whose coverage *might* contain `p` (superset,
    /// by bounding box); confirm with [`Camera::sees`].
    pub fn coverage_candidates(&self, p: Point) -> &[usize] {
        match self.grid.cell_of(p) {
            Some(cell) => {
                let slot = (cell.row as usize) * self.grid.cols() as usize + cell.col as usize;
                &self.buckets[slot]
            }
            None => &[],
        }
    }

    /// The cameras that actually see `p`.
    pub fn cameras_covering(&self, p: Point) -> Vec<CameraId> {
        self.coverage_candidates(p)
            .iter()
            .map(|&i| &self.cameras[i])
            .filter(|c| c.sees(p))
            .map(Camera::id)
            .collect()
    }

    /// The cameras adjacent to `id` in the hand-off graph.
    pub fn adjacent(&self, id: CameraId) -> &[CameraId] {
        self.adjacency.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Fraction of probe points (on a uniform grid over the extent)
    /// covered by at least one camera. A deployment-quality diagnostic
    /// reported in the workload table.
    pub fn coverage_fraction(&self, probes_per_axis: usize) -> f64 {
        let ext = self.grid.extent();
        let mut covered = 0usize;
        let mut total = 0usize;
        for i in 0..probes_per_axis {
            for j in 0..probes_per_axis {
                let p = Point::new(
                    ext.min.x + ext.width() * (i as f64 + 0.5) / probes_per_axis as f64,
                    ext.min.y + ext.height() * (j as f64 + 0.5) / probes_per_axis as f64,
                );
                total += 1;
                if !self.cameras_covering(p).is_empty() {
                    covered += 1;
                }
            }
        }
        covered as f64 / total as f64
    }
}

/// Expected travel-time windows between adjacent cameras: the temporal
/// gate of cross-camera hand-off association.
///
/// For each adjacency pair the model stores the road distance between the
/// cameras' focus points; the plausible window for a class is
/// `[0, 2 × d / v_lo + 5 s]`, where `v_lo` is the class's minimum speed.
/// The lower bound is zero because adjacent coverage regions overlap or
/// nearly touch — an entity can leave one camera and appear in the next
/// immediately; the discriminative power of the gate is its upper bound
/// (slow classes cannot teleport between distant cameras) combined with
/// the adjacency requirement itself.
#[derive(Debug)]
pub struct TransitionModel {
    distances: HashMap<(CameraId, CameraId), f64>,
}

impl TransitionModel {
    /// Builds the model for every adjacent camera pair of `network`,
    /// measuring distance along `roads`.
    pub fn from_network(network: &CameraNetwork, roads: &RoadNetwork) -> Self {
        let mut distances = HashMap::new();
        for cam in network.cameras() {
            for &other in network.adjacent(cam.id()) {
                let key = Self::key(cam.id(), other);
                if distances.contains_key(&key) {
                    continue;
                }
                let other_cam = network.get(other).expect("adjacent camera exists");
                let route = roads.route(cam.focus_point(), other_cam.focus_point());
                let d = RoadNetwork::route_length(&route)
                    .max(cam.focus_point().distance(other_cam.focus_point()));
                distances.insert(key, d);
            }
        }
        TransitionModel { distances }
    }

    fn key(a: CameraId, b: CameraId) -> (CameraId, CameraId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Number of modelled pairs.
    pub fn pair_count(&self) -> usize {
        self.distances.len()
    }

    /// Road distance between the pair, if adjacent.
    pub fn distance(&self, a: CameraId, b: CameraId) -> Option<f64> {
        self.distances.get(&Self::key(a, b)).copied()
    }

    /// The plausible transit window `(min, max)` for `class` between the
    /// pair, or `None` when the cameras are not adjacent.
    pub fn window(
        &self,
        a: CameraId,
        b: CameraId,
        class: EntityClass,
    ) -> Option<(Duration, Duration)> {
        let d = self.distance(a, b)?;
        let (v_lo, _v_hi) = class.speed_range();
        let max = Duration::from_millis((d / v_lo * 2.0 * 1000.0) as u64) + Duration::from_secs(5);
        Some((Duration::ZERO, max))
    }

    /// `true` when a gap of `dt` between sightings at `a` then `b` is
    /// consistent with `class` travelling between them.
    pub fn plausible(&self, a: CameraId, b: CameraId, class: EntityClass, dt: Duration) -> bool {
        match self.window(a, b, class) {
            Some((min, max)) => dt >= min && dt <= max,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcam_geo::BBox;

    fn roads() -> RoadNetwork {
        RoadNetwork::grid(
            BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 2000.0)),
            200.0,
        )
    }

    #[test]
    fn deployment_places_distinct_cameras_on_intersections() {
        let r = roads();
        let net = CameraNetwork::deploy_on_roads(&r, 50, 1);
        assert_eq!(net.len(), 50);
        let mut positions = std::collections::HashSet::new();
        for cam in net.cameras() {
            let p = cam.position();
            assert!(r.on_road(p, 1e-6), "camera off-road at {p}");
            assert!(
                positions.insert((p.x as i64, p.y as i64)),
                "two cameras at {p}"
            );
        }
    }

    #[test]
    fn coverage_lookup_matches_exhaustive_scan() {
        let r = roads();
        let net = CameraNetwork::deploy_on_roads(&r, 40, 2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let p = Point::new(rng.gen_range(0.0..2000.0), rng.gen_range(0.0..2000.0));
            let mut expected: Vec<CameraId> = net
                .cameras()
                .filter(|c| c.sees(p))
                .map(Camera::id)
                .collect();
            expected.sort();
            let mut got = net.cameras_covering(p);
            got.sort();
            assert_eq!(got, expected, "at {p}");
        }
    }

    #[test]
    fn adjacency_is_symmetric_and_bounded_by_radius() {
        let r = roads();
        let net = CameraNetwork::deploy_on_roads(&r, 60, 4);
        for cam in net.cameras() {
            for &other in net.adjacent(cam.id()) {
                assert!(net.adjacent(other).contains(&cam.id()), "asymmetric edge");
                let d = cam.position().distance(net.get(other).unwrap().position());
                assert!(d <= 500.0 + 1e-9, "edge of length {d}");
            }
        }
    }

    #[test]
    fn clustered_deployment_is_denser_at_centers() {
        let r = roads();
        let center = Point::new(1000.0, 1000.0);
        let net = CameraNetwork::deploy_clustered(&r, 60, 5, &[center], 150.0, 50.0);
        let near = net
            .cameras()
            .filter(|c| c.position().distance(center) <= 450.0)
            .count();
        // The boosted disc holds far more than its area share (~15%).
        assert!(near >= 15, "only {near}/60 cameras near the hotspot");
    }

    #[test]
    fn duplicate_ids_panic() {
        let cams = vec![
            Camera::new(CameraId(0), Point::new(0.0, 0.0), 0.0, 1.0, 10.0),
            Camera::new(CameraId(0), Point::new(50.0, 0.0), 0.0, 1.0, 10.0),
        ];
        assert!(std::panic::catch_unwind(|| CameraNetwork::new(cams, 100.0)).is_err());
    }

    #[test]
    fn coverage_fraction_sane() {
        let r = roads();
        let sparse = CameraNetwork::deploy_on_roads(&r, 5, 6).coverage_fraction(40);
        let dense = CameraNetwork::deploy_on_roads(&r, 100, 6).coverage_fraction(40);
        assert!(dense > sparse);
        assert!((0.0..=1.0).contains(&sparse));
    }

    #[test]
    fn transition_windows_scale_with_distance_and_class() {
        let r = roads();
        let net = CameraNetwork::deploy_on_roads(&r, 80, 7);
        let model = TransitionModel::from_network(&net, &r);
        assert!(
            model.pair_count() > 0,
            "no adjacent pairs in a dense deployment"
        );
        let (&(a, b), &d) = model.distances.iter().next().unwrap();
        assert!(d > 0.0);
        let (car_min, car_max) = model.window(a, b, EntityClass::Car).unwrap();
        let (ped_min, ped_max) = model.window(a, b, EntityClass::Pedestrian).unwrap();
        assert!(car_min < car_max);
        // Pedestrians are slower: their window is later/longer.
        assert!(ped_min >= car_min);
        assert!(ped_max >= car_max);
        // Plausibility gate.
        assert!(model.plausible(a, b, EntityClass::Car, car_min));
        assert!(!model.plausible(a, b, EntityClass::Car, car_max + Duration::from_secs(1000)));
        // Non-adjacent pair rejected.
        let far = CameraId(9999);
        assert_eq!(model.window(a, far, EntityClass::Car), None);
    }
}
