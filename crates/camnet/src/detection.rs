//! The detection simulator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr_normal::sample_gaussian;
use stcam_geo::Point;
use stcam_world::World;

use crate::camera::CameraId;
use crate::network::CameraNetwork;
use crate::observation::{Observation, ObservationId};
use crate::signature::{Signature, SIGNATURE_DIM};

/// Parameters of the per-camera detector.
///
/// Calibrated to mimic a competent 2013-era pipeline: high but imperfect
/// recall, metre-scale geo-localisation error, moderate appearance noise,
/// and a low false-positive rate per camera per frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionModel {
    /// Probability that an entity inside coverage is detected in a frame.
    pub detect_probability: f64,
    /// Standard deviation of geo-localisation error, metres (isotropic).
    pub position_sigma: f64,
    /// Standard deviation of per-component signature noise.
    pub signature_sigma: f32,
    /// Expected false positives per camera per frame (Bernoulli draw,
    /// capped at 1 per frame — adequate for the rates evaluated).
    pub false_positive_rate: f64,
    /// Probability that a detection's class label is wrong (uniformly
    /// confused with another class).
    pub class_error_rate: f64,
}

impl DetectionModel {
    /// A perfect detector: every covered entity detected, no noise, no
    /// false positives. Used by correctness tests.
    pub fn perfect() -> Self {
        DetectionModel {
            detect_probability: 1.0,
            position_sigma: 0.0,
            signature_sigma: 0.0,
            false_positive_rate: 0.0,
            class_error_rate: 0.0,
        }
    }

    /// Replaces the signature noise level (the x-axis of the stitching
    /// accuracy experiment).
    pub fn with_signature_sigma(mut self, sigma: f32) -> Self {
        self.signature_sigma = sigma;
        self
    }

    /// Replaces the detection probability.
    pub fn with_detect_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.detect_probability = p;
        self
    }
}

impl Default for DetectionModel {
    fn default() -> Self {
        DetectionModel {
            detect_probability: 0.92,
            position_sigma: 1.5,
            signature_sigma: 0.08,
            false_positive_rate: 0.02,
            class_error_rate: 0.03,
        }
    }
}

/// Drives all cameras against the world state, producing one frame of
/// observations per [`observe`](SensorSim::observe) call.
#[derive(Debug)]
pub struct SensorSim {
    network: CameraNetwork,
    model: DetectionModel,
    rng: StdRng,
    next_seq: Vec<u64>,
}

impl SensorSim {
    /// Creates a simulator over `network` with detector `model`, seeded
    /// deterministically by `seed`.
    pub fn new(network: CameraNetwork, model: DetectionModel, seed: u64) -> Self {
        let next_seq = vec![0u64; network.len()];
        SensorSim {
            network,
            model,
            rng: StdRng::seed_from_u64(seed),
            next_seq,
        }
    }

    /// The camera network being simulated.
    pub fn network(&self) -> &CameraNetwork {
        &self.network
    }

    /// The detection model in effect.
    pub fn model(&self) -> DetectionModel {
        self.model
    }

    /// Produces the observations of one frame taken at `world.now()`.
    ///
    /// Every entity inside a camera's coverage yields an observation with
    /// probability `detect_probability`; an entity covered by several
    /// cameras can be observed by each of them independently (exactly as
    /// in a real deployment — deduplication is the framework's job).
    pub fn observe(&mut self, world: &World) -> Vec<Observation> {
        let now = world.now();
        let mut out = Vec::new();
        // Spatially pre-bucket entities against camera coverage bboxes via
        // the network's coverage grid to avoid the full cameras × entities
        // product.
        for entity in world.entities() {
            let candidates = self.network.coverage_candidates(entity.position).to_vec();
            for cam_idx in candidates {
                let camera = self.network.camera_by_index(cam_idx);
                if !camera.sees(entity.position) {
                    continue;
                }
                let cam_id = camera.id();
                if !self.rng.gen_bool(self.model.detect_probability) {
                    continue;
                }
                let noisy_pos = Point::new(
                    entity.position.x + sample_gaussian(&mut self.rng) * self.model.position_sigma,
                    entity.position.y + sample_gaussian(&mut self.rng) * self.model.position_sigma,
                );
                let mut noise = [0f32; SIGNATURE_DIM];
                if self.model.signature_sigma > 0.0 {
                    for n in &mut noise {
                        *n = sample_gaussian(&mut self.rng) as f32 * self.model.signature_sigma;
                    }
                }
                let class = if self.model.class_error_rate > 0.0
                    && self.rng.gen_bool(self.model.class_error_rate)
                {
                    let wrong = (entity.class.as_u8() + self.rng.gen_range(1u8..4)) % 4;
                    stcam_world::EntityClass::from_u8(wrong).expect("class in range")
                } else {
                    entity.class
                };
                out.push(Observation {
                    id: self.next_id(cam_idx),
                    camera: cam_id,
                    time: now,
                    position: noisy_pos,
                    class,
                    signature: Signature::latent_for_entity(entity.id.0).perturbed(&noise),
                    truth: Some(entity.id),
                });
            }
        }
        // False positives: uniform position inside coverage, random
        // signature.
        if self.model.false_positive_rate > 0.0 {
            for cam_idx in 0..self.network.len() {
                if !self.rng.gen_bool(self.model.false_positive_rate.min(1.0)) {
                    continue;
                }
                let camera = self.network.camera_by_index(cam_idx);
                // Rejection-sample a point inside the sector.
                let bb = camera.coverage_bbox();
                let pos = loop {
                    let p = Point::new(
                        self.rng.gen_range(bb.min.x..=bb.max.x),
                        self.rng.gen_range(bb.min.y..=bb.max.y),
                    );
                    if camera.sees(p) {
                        break p;
                    }
                };
                let cam_id = camera.id();
                let fake_latent = self.rng.gen::<u64>() | (1 << 63);
                out.push(Observation {
                    id: self.next_id(cam_idx),
                    camera: cam_id,
                    time: now,
                    position: pos,
                    class: stcam_world::EntityClass::from_u8(self.rng.gen_range(0..4))
                        .expect("class in range"),
                    signature: Signature::latent_for_entity(fake_latent),
                    truth: None,
                });
            }
        }
        out
    }

    fn next_id(&mut self, cam_idx: usize) -> ObservationId {
        let cam_id = self.network.camera_by_index(cam_idx).id();
        let seq = self.next_seq[cam_idx];
        self.next_seq[cam_idx] += 1;
        ObservationId::compose(cam_id, seq)
    }

    /// Identifier of the camera by dense index (mostly for tests).
    pub fn camera_id(&self, idx: usize) -> CameraId {
        self.network.camera_by_index(idx).id()
    }
}

/// Minimal Gaussian sampling (Box–Muller) so the crate does not need the
/// `rand_distr` dependency.
mod rand_distr_normal {
    use rand::Rng;

    /// One standard normal draw.
    pub fn sample_gaussian<R: Rng>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcam_world::{World, WorldConfig};

    fn setup(model: DetectionModel) -> (World, SensorSim) {
        let world = World::new(WorldConfig::small_town().with_seed(5));
        let network = CameraNetwork::deploy_on_roads(world.roads(), 30, 42);
        (world, SensorSim::new(network, model, 11))
    }

    #[test]
    fn perfect_detector_sees_every_covered_entity() {
        let (world, mut sim) = setup(DetectionModel::perfect());
        let frame = sim.observe(&world);
        // Count expected detections directly.
        let mut expected = 0;
        for e in world.entities() {
            for cam in sim.network().cameras() {
                if cam.sees(e.position) {
                    expected += 1;
                }
            }
        }
        assert_eq!(frame.len(), expected);
        assert!(frame.iter().all(|o| o.truth.is_some()));
        // Positions exact under zero noise.
        for obs in &frame {
            let entity_pos = world
                .entities()
                .find(|e| Some(e.id) == obs.truth)
                .unwrap()
                .position;
            assert_eq!(obs.position, entity_pos);
        }
    }

    #[test]
    fn lossy_detector_misses_some() {
        let (world, mut sim) = setup(DetectionModel::perfect().with_detect_probability(0.5));
        let (world2, mut sim_perfect) = setup(DetectionModel::perfect());
        let lossy = sim.observe(&world).len();
        let full = sim_perfect.observe(&world2).len();
        assert!(lossy < full, "lossy {lossy} vs full {full}");
        assert!(lossy > 0);
    }

    #[test]
    fn localisation_noise_displaces_positions() {
        let mut model = DetectionModel::perfect();
        model.position_sigma = 5.0;
        let (world, mut sim) = setup(model);
        let frame = sim.observe(&world);
        let displaced = frame
            .iter()
            .filter(|o| {
                let true_pos = world
                    .entities()
                    .find(|e| Some(e.id) == o.truth)
                    .unwrap()
                    .position;
                o.position.distance(true_pos) > 0.01
            })
            .count();
        assert!(displaced as f64 > frame.len() as f64 * 0.9);
    }

    #[test]
    fn false_positives_have_no_truth_and_land_in_coverage() {
        let mut model = DetectionModel::perfect();
        model.false_positive_rate = 1.0; // one per camera per frame
        let (world, mut sim) = setup(model);
        let frame = sim.observe(&world);
        let fps: Vec<_> = frame.iter().filter(|o| o.is_false_positive()).collect();
        assert_eq!(fps.len(), sim.network().len());
        for fp in fps {
            let cam = sim
                .network()
                .cameras()
                .find(|c| c.id() == fp.camera)
                .unwrap();
            assert!(cam.sees(fp.position));
        }
    }

    #[test]
    fn observation_ids_unique_across_frames() {
        let (mut world, mut sim) = setup(DetectionModel::default());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5 {
            for obs in sim.observe(&world) {
                assert!(seen.insert(obs.id), "duplicate id {}", obs.id);
            }
            world.step(stcam_geo::Duration::from_millis(500));
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let run = || {
            let (world, mut sim) = setup(DetectionModel::default());
            sim.observe(&world)
                .iter()
                .map(|o| (o.id, o.position.x))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn signature_noise_scales_with_sigma() {
        let avg_self_distance = |sigma: f32| {
            let mut model = DetectionModel::perfect();
            model.signature_sigma = sigma;
            let (world, mut sim) = setup(model);
            let frame = sim.observe(&world);
            let mut total = 0f32;
            let mut n = 0;
            for o in &frame {
                let latent = Signature::latent_for_entity(o.truth.unwrap().0);
                total += o.signature.distance(&latent);
                n += 1;
            }
            total / n as f32
        };
        let low = avg_self_distance(0.02);
        let high = avg_self_distance(0.3);
        assert!(high > low * 5.0, "low {low}, high {high}");
    }
}
