//! Camera-network model for the `stcam` framework.
//!
//! The real system ingests detections produced by video analytics running
//! at each camera. This crate substitutes a calibrated **detection
//! simulator** operating on the synthetic ground truth of `stcam-world`:
//!
//! * [`Camera`] — mount position, heading, field-of-view sector, range.
//! * [`CameraNetwork`] — a deployment of cameras over a road network,
//!   with coverage lookup and the camera **adjacency graph** used for
//!   cross-camera hand-off.
//! * [`DetectionModel`] / [`SensorSim`] — per-frame detection with miss
//!   probability, localisation noise, signature noise, and false
//!   positives.
//! * [`Signature`] — a compact appearance feature vector; real systems
//!   extract these with re-identification networks, here each entity has
//!   a stable latent signature observed through Gaussian noise.
//! * [`Observation`] — the tuple every downstream component consumes:
//!   *(camera, time, geo-located position, class, signature)*.
//! * [`TransitionModel`] — expected travel-time windows between adjacent
//!   cameras, the temporal gate for hand-off association.
//!
//! The simulator exercises exactly the code paths a live deployment
//! would: the framework only ever sees [`Observation`] values.
//!
//! # Example
//!
//! ```
//! use stcam_camnet::{CameraNetwork, DetectionModel, SensorSim};
//! use stcam_world::{World, WorldConfig};
//! use stcam_geo::Duration;
//!
//! let world = World::new(WorldConfig::small_town().with_seed(3));
//! let cams = CameraNetwork::deploy_on_roads(world.roads(), 40, 99);
//! let mut sim = SensorSim::new(cams, DetectionModel::default(), 7);
//! let frame = sim.observe(&world);
//! // Some entities are visible to some cameras.
//! assert!(frame.len() < 400);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
mod camera;
mod detection;
mod network;
mod observation;
mod signature;
mod wire_impls;

pub use batch::{decode_batch_filtered, decode_batch_into, scan_batch_keys, ObservationBatch};
pub use camera::{Camera, CameraId};
pub use detection::{DetectionModel, SensorSim};
pub use network::{CameraNetwork, TransitionModel};
pub use observation::{Observation, ObservationId};
pub use signature::{Signature, SIGNATURE_DIM};
