//! Columnar wire frame for observation batches.
//!
//! The row-oriented `Vec<Observation>` encoding repeats per-field framing
//! for every observation even though consecutive observations in a batch
//! are highly correlated: ids and timestamps are near-monotonic, camera
//! ids repeat in runs, classes fit in two bits, and ground-truth entity
//! ids track the observation sequence. [`encode_batch`] exploits that by
//! laying the batch out **by column**:
//!
//! ```text
//! count      varint n                    (0 ⇒ frame ends here)
//! flags      u8                          bit 0: fixed-point positions
//! ids        varint first, then n-1 zigzag deltas
//! cameras    run-length pairs (varint run, varint camera) summing to n
//! times      varint first ms, then n-1 zigzag delta-ms
//! classes    2 bits each, packed 4 per byte
//! positions  fixed-point: 2 zigzag varints per obs (1/1024 m units)
//!            raw:         2 × f64 LE per obs
//! signatures 16 × f32 LE per obs
//! truth      presence bitmap ⌈n/8⌉ bytes, then per present truth a
//!            zigzag varint of (entity − id.seq()) (wrapping)
//! ```
//!
//! Positions use the fixed-point column only when every coordinate in the
//! batch is exactly representable in 1/1024-metre units (checked per
//! batch, signalled by the flag byte); otherwise raw `f64` bits are
//! shipped. Either way the round-trip is **lossless** — callers such as
//! the chaos harness compare query answers bit-for-bit against a
//! centralized oracle. Signatures are calibrated sensor noise and do not
//! compress losslessly, so they stay raw and dominate the residual cost.

use bytes::{Buf, BufMut};
use stcam_codec::{varint, DecodeError, Wire, MAX_SEQ_LEN};
use stcam_geo::{Point, Timestamp};
use stcam_world::{EntityClass, EntityId};

use crate::camera::CameraId;
use crate::observation::{Observation, ObservationId};
use crate::signature::{Signature, SIGNATURE_DIM};

/// Fixed-point position resolution: 1/1024 m (≈ 1 mm).
const POS_SCALE: f64 = 1024.0;
/// Flag bit: positions are fixed-point varints instead of raw `f64`.
const FLAG_FIXED_POINT_POS: u8 = 0b0000_0001;

/// `v` scaled to fixed point, when that is exactly invertible.
fn fixed_point(v: f64) -> Option<i64> {
    let scaled = v * POS_SCALE;
    // `fract() == 0` rejects NaN/∞ too; the magnitude bound keeps the
    // integer exactly representable both as i64 and as f64.
    if scaled.fract() == 0.0 && scaled.abs() <= (1i64 << 52) as f64 {
        Some(scaled as i64)
    } else {
        None
    }
}

fn need<B: Buf>(buf: &B, n: usize, context: &'static str) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::UnexpectedEnd { context })
    } else {
        Ok(())
    }
}

/// Reads and validates the count + flags prefix of one batch frame.
/// An empty frame (`n == 0`) has no flag byte; `flags` is 0 then.
fn frame_header<B: Buf>(buf: &mut B) -> Result<(usize, u8), DecodeError> {
    let n = varint::read_u64(buf)?;
    if n > MAX_SEQ_LEN {
        return Err(DecodeError::LengthOverflow {
            declared: n,
            max: MAX_SEQ_LEN,
        });
    }
    let n = n as usize;
    if n == 0 {
        return Ok((0, 0));
    }
    need(buf, 1, "batch flags")?;
    let flags = buf.get_u8();
    if flags & !FLAG_FIXED_POINT_POS != 0 {
        return Err(DecodeError::InvalidValue {
            reason: "unknown batch flags",
        });
    }
    Ok((n, flags))
}

/// Appends the columnar wire form of `batch` to `buf`.
pub fn encode_batch<B: BufMut>(batch: &[Observation], buf: &mut B) {
    varint::write_u64(buf, batch.len() as u64);
    if batch.is_empty() {
        return;
    }

    let fixed: Option<Vec<(i64, i64)>> = batch
        .iter()
        .map(|o| Some((fixed_point(o.position.x)?, fixed_point(o.position.y)?)))
        .collect();
    let flags = if fixed.is_some() {
        FLAG_FIXED_POINT_POS
    } else {
        0
    };
    buf.put_u8(flags);

    // ids: absolute first, wrapping zigzag deltas after.
    varint::write_u64(buf, batch[0].id.0);
    for pair in batch.windows(2) {
        varint::write_i64(buf, pair[1].id.0.wrapping_sub(pair[0].id.0) as i64);
    }

    // cameras: run-length encoded.
    let mut run_start = 0;
    for i in 1..=batch.len() {
        if i == batch.len() || batch[i].camera != batch[run_start].camera {
            varint::write_u64(buf, (i - run_start) as u64);
            varint::write_u64(buf, batch[run_start].camera.0 as u64);
            run_start = i;
        }
    }

    // times: absolute first, wrapping zigzag delta-millis after.
    varint::write_u64(buf, batch[0].time.as_millis());
    for pair in batch.windows(2) {
        varint::write_i64(
            buf,
            pair[1]
                .time
                .as_millis()
                .wrapping_sub(pair[0].time.as_millis()) as i64,
        );
    }

    // classes: 2 bits each, 4 per byte.
    for chunk in batch.chunks(4) {
        let mut byte = 0u8;
        for (slot, obs) in chunk.iter().enumerate() {
            byte |= obs.class.as_u8() << (2 * slot);
        }
        buf.put_u8(byte);
    }

    // positions.
    match &fixed {
        Some(points) => {
            for &(x, y) in points {
                varint::write_i64(buf, x);
                varint::write_i64(buf, y);
            }
        }
        None => {
            for obs in batch {
                buf.put_f64_le(obs.position.x);
                buf.put_f64_le(obs.position.y);
            }
        }
    }

    // signatures: raw.
    for obs in batch {
        for &v in obs.signature.values() {
            buf.put_f32_le(v);
        }
    }

    // truth: presence bitmap, then wrapping deltas vs the id sequence.
    for chunk in batch.chunks(8) {
        let mut byte = 0u8;
        for (slot, obs) in chunk.iter().enumerate() {
            if obs.truth.is_some() {
                byte |= 1 << slot;
            }
        }
        buf.put_u8(byte);
    }
    for obs in batch {
        if let Some(entity) = obs.truth {
            varint::write_i64(buf, entity.0.wrapping_sub(obs.id.seq()) as i64);
        }
    }
}

/// Reads one columnar batch frame from `buf`.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated input, a hostile length prefix,
/// malformed run-length structure, or an invalid class code.
pub fn decode_batch<B: Buf>(buf: &mut B) -> Result<Vec<Observation>, DecodeError> {
    let mut out = Vec::new();
    decode_batch_into(buf, &mut out)?;
    Ok(out)
}

/// Like [`decode_batch`], but **appends** the decoded observations to
/// `out` instead of allocating a fresh vector. Segment readers scanning
/// many per-cell blocks into one result use this to reuse a single
/// output allocation. On error, `out` may hold a partially decoded
/// prefix of the failing block; callers that care should truncate back
/// to the pre-call length.
pub fn decode_batch_into<B: Buf>(
    buf: &mut B,
    out: &mut Vec<Observation>,
) -> Result<(), DecodeError> {
    let (n, flags) = frame_header(buf)?;
    if n == 0 {
        return Ok(());
    }

    let ids = read_ids(buf, n)?;
    let cameras = read_cameras(buf, n)?;
    let times = read_times(buf, n)?;
    let classes = read_classes(buf, n)?;
    let positions = read_positions(buf, n, flags)?;

    let mut signatures = Vec::with_capacity(n.min(1024));
    need(buf, 4 * SIGNATURE_DIM * n, "signature column")?;
    for _ in 0..n {
        signatures.push(read_signature(buf));
    }

    let present = read_present(buf, n)?;

    out.reserve(n.min(1024));
    for i in 0..n {
        let truth = if present[i] {
            let delta = varint::read_i64(buf)?;
            Some(EntityId(ids[i].seq().wrapping_add(delta as u64)))
        } else {
            None
        };
        out.push(Observation {
            id: ids[i],
            camera: cameras[i],
            time: times[i],
            position: positions[i],
            class: classes[i],
            signature: signatures[i],
            truth,
        });
    }
    Ok(())
}

// --- per-column readers and skippers ------------------------------------
//
// One implementation per column, shared by the full decoder and the
// partial scanners below. Skippers still validate frame *structure*
// (varint framing, run-length bounds) but not the skipped values.

fn read_ids<B: Buf>(buf: &mut B, n: usize) -> Result<Vec<ObservationId>, DecodeError> {
    let mut ids = Vec::with_capacity(n.min(1024));
    let mut prev = varint::read_u64(buf)?;
    ids.push(ObservationId(prev));
    for _ in 1..n {
        prev = prev.wrapping_add(varint::read_i64(buf)? as u64);
        ids.push(ObservationId(prev));
    }
    Ok(ids)
}

fn skip_ids<B: Buf>(buf: &mut B, n: usize) -> Result<(), DecodeError> {
    varint::read_u64(buf)?;
    for _ in 1..n {
        varint::read_i64(buf)?;
    }
    Ok(())
}

fn read_cameras<B: Buf>(buf: &mut B, n: usize) -> Result<Vec<CameraId>, DecodeError> {
    let mut cameras = Vec::with_capacity(n.min(1024));
    while cameras.len() < n {
        let (run, camera) = camera_run(buf, n - cameras.len())?;
        cameras.extend(std::iter::repeat_n(camera, run));
    }
    Ok(cameras)
}

fn skip_cameras<B: Buf>(buf: &mut B, n: usize) -> Result<(), DecodeError> {
    let mut seen = 0;
    while seen < n {
        seen += camera_run(buf, n - seen)?.0;
    }
    Ok(())
}

fn camera_run<B: Buf>(buf: &mut B, left: usize) -> Result<(usize, CameraId), DecodeError> {
    let run = varint::read_u64(buf)?;
    if run == 0 || run > left as u64 {
        return Err(DecodeError::InvalidValue {
            reason: "camera run length out of bounds",
        });
    }
    let camera = varint::read_u64(buf)?;
    let camera = u32::try_from(camera).map_err(|_| DecodeError::InvalidValue {
        reason: "camera id out of range",
    })?;
    Ok((run as usize, CameraId(camera)))
}

fn read_times<B: Buf>(buf: &mut B, n: usize) -> Result<Vec<Timestamp>, DecodeError> {
    let mut times = Vec::with_capacity(n.min(1024));
    let mut prev_ms = varint::read_u64(buf)?;
    times.push(Timestamp::from_millis(prev_ms));
    for _ in 1..n {
        prev_ms = prev_ms.wrapping_add(varint::read_i64(buf)? as u64);
        times.push(Timestamp::from_millis(prev_ms));
    }
    Ok(times)
}

fn read_classes<B: Buf>(buf: &mut B, n: usize) -> Result<Vec<EntityClass>, DecodeError> {
    let mut classes = Vec::with_capacity(n.min(1024));
    need(buf, n.div_ceil(4), "class column")?;
    while classes.len() < n {
        let byte = buf.get_u8();
        for slot in 0..4.min(n - classes.len()) {
            let code = (byte >> (2 * slot)) & 0b11;
            classes.push(
                EntityClass::from_u8(code).ok_or(DecodeError::InvalidDiscriminant {
                    type_name: "EntityClass",
                    value: code as u64,
                })?,
            );
        }
    }
    Ok(classes)
}

fn skip_classes<B: Buf>(buf: &mut B, n: usize) -> Result<(), DecodeError> {
    need(buf, n.div_ceil(4), "class column")?;
    buf.advance(n.div_ceil(4));
    Ok(())
}

fn read_positions<B: Buf>(buf: &mut B, n: usize, flags: u8) -> Result<Vec<Point>, DecodeError> {
    let mut positions = Vec::with_capacity(n.min(1024));
    if flags & FLAG_FIXED_POINT_POS != 0 {
        for _ in 0..n {
            let x = varint::read_i64(buf)? as f64 / POS_SCALE;
            let y = varint::read_i64(buf)? as f64 / POS_SCALE;
            positions.push(Point::new(x, y));
        }
    } else {
        need(buf, 16 * n, "position column")?;
        for _ in 0..n {
            positions.push(Point::new(buf.get_f64_le(), buf.get_f64_le()));
        }
    }
    Ok(positions)
}

fn read_signature<B: Buf>(buf: &mut B) -> Signature {
    // One bulk copy instead of 16 bounds-checked `get_f32_le` calls; the
    // signature column dominates full-row decode cost.
    let mut raw = [0u8; 4 * SIGNATURE_DIM];
    buf.copy_to_slice(&mut raw);
    let mut values = [0f32; SIGNATURE_DIM];
    for (v, c) in values.iter_mut().zip(raw.chunks_exact(4)) {
        *v = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
    }
    Signature::new(values)
}

fn read_present<B: Buf>(buf: &mut B, n: usize) -> Result<Vec<bool>, DecodeError> {
    let mut present = Vec::with_capacity(n.min(1024));
    need(buf, n.div_ceil(8), "truth bitmap")?;
    while present.len() < n {
        let byte = buf.get_u8();
        for slot in 0..8.min(n - present.len()) {
            present.push(byte & (1 << slot) != 0);
        }
    }
    Ok(present)
}

/// Visits `(time, position)` for every row of one columnar batch frame
/// without materialising observations: the id, camera, class, signature,
/// and truth columns are stepped over, not decoded. Sealed-segment
/// count and heatmap scans use this — the signature column alone is
/// `16 × f32` per row, so a key-only visit costs a fraction of
/// [`decode_batch_into`]. Consumes exactly one frame; returns its row
/// count.
///
/// # Errors
///
/// Returns a [`DecodeError`] on truncated input, a hostile length
/// prefix, or malformed run-length structure. The skipped columns'
/// *values* are not validated.
pub fn scan_batch_keys<B: Buf>(
    buf: &mut B,
    mut f: impl FnMut(Timestamp, Point),
) -> Result<usize, DecodeError> {
    let (n, flags) = frame_header(buf)?;
    if n == 0 {
        return Ok(0);
    }
    skip_ids(buf, n)?;
    skip_cameras(buf, n)?;
    let times = read_times(buf, n)?;
    skip_classes(buf, n)?;
    if flags & FLAG_FIXED_POINT_POS != 0 {
        for &t in &times {
            let x = varint::read_i64(buf)? as f64 / POS_SCALE;
            let y = varint::read_i64(buf)? as f64 / POS_SCALE;
            f(t, Point::new(x, y));
        }
    } else {
        need(buf, 16 * n, "position column")?;
        for &t in &times {
            f(t, Point::new(buf.get_f64_le(), buf.get_f64_le()));
        }
    }
    need(buf, 4 * SIGNATURE_DIM * n, "signature column")?;
    buf.advance(4 * SIGNATURE_DIM * n);
    need(buf, n.div_ceil(8), "truth bitmap")?;
    let mut with_truth = 0u32;
    let mut left = n;
    while left > 0 {
        let bits = 8.min(left);
        let mask = ((1u16 << bits) - 1) as u8;
        with_truth += (buf.get_u8() & mask).count_ones();
        left -= bits;
    }
    for _ in 0..with_truth {
        varint::read_i64(buf)?;
    }
    Ok(n)
}

/// Like [`decode_batch_into`], but materialises only rows for which
/// `keep(time, position)` returns `true`. The wide columns — signatures
/// (`16 × f32` per row) and truth — are decoded **only for kept rows**;
/// a dropped row costs a few varint steps. Sealed-segment readers use
/// this to answer partially-covered blocks without paying full decode
/// for rows outside the query region or window. Consumes exactly one
/// frame; returns its total row count.
pub fn decode_batch_filtered<B: Buf>(
    buf: &mut B,
    mut keep: impl FnMut(Timestamp, Point) -> bool,
    out: &mut Vec<Observation>,
) -> Result<usize, DecodeError> {
    let (n, flags) = frame_header(buf)?;
    if n == 0 {
        return Ok(0);
    }
    let ids = read_ids(buf, n)?;
    let cameras = read_cameras(buf, n)?;
    let times = read_times(buf, n)?;
    let classes = read_classes(buf, n)?;
    let positions = read_positions(buf, n, flags)?;

    let kept: Vec<u32> = (0..n)
        .filter(|&i| keep(times[i], positions[i]))
        .map(|i| i as u32)
        .collect();

    // Signature column: fixed-stride, so dropped rows are one `advance`.
    need(buf, 4 * SIGNATURE_DIM * n, "signature column")?;
    let mut signatures = Vec::with_capacity(kept.len());
    let mut cursor = 0;
    for &i in &kept {
        let i = i as usize;
        buf.advance(4 * SIGNATURE_DIM * (i - cursor));
        signatures.push(read_signature(buf));
        cursor = i + 1;
    }
    buf.advance(4 * SIGNATURE_DIM * (n - cursor));

    let present = read_present(buf, n)?;
    out.reserve(kept.len());
    let mut signatures = signatures.into_iter();
    let mut kept = kept.into_iter().peekable();
    for i in 0..n {
        let is_kept = kept.peek() == Some(&(i as u32));
        let truth = if present[i] {
            let delta = varint::read_i64(buf)?;
            is_kept.then(|| EntityId(ids[i].seq().wrapping_add(delta as u64)))
        } else {
            None
        };
        if is_kept {
            kept.next();
            out.push(Observation {
                id: ids[i],
                camera: cameras[i],
                time: times[i],
                position: positions[i],
                class: classes[i],
                signature: signatures.next().expect("one signature per kept row"),
                truth,
            });
        }
    }
    Ok(n)
}

/// A rough upper bound on the encoded size of `batch`, for buffer
/// pre-reservation. Assumes the common case (raw positions, small
/// deltas); never consulted for correctness.
pub fn batch_size_hint(batch: &[Observation]) -> usize {
    16 + batch.len() * (4 + 16 + 4 * SIGNATURE_DIM + 4)
}

/// A `Vec<Observation>` newtype whose [`Wire`] form is the columnar
/// frame, for callers that want the batch layout through the generic
/// codec entry points.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationBatch(pub Vec<Observation>);

impl Wire for ObservationBatch {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        encode_batch(&self.0, buf);
    }
    fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        decode_batch(buf).map(ObservationBatch)
    }
    fn size_hint(&self) -> usize {
        batch_size_hint(&self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stcam_codec::{decode_from_slice, encode_to_vec, encoded_len};

    fn obs(camera: u32, seq: u64, t_ms: u64, x: f64, y: f64) -> Observation {
        Observation {
            id: ObservationId::compose(CameraId(camera), seq),
            camera: CameraId(camera),
            time: Timestamp::from_millis(t_ms),
            position: Point::new(x, y),
            class: EntityClass::ALL[(seq % 4) as usize],
            signature: Signature::latent_for_entity(seq),
            truth: (seq % 3 != 0).then_some(EntityId(seq)),
        }
    }

    fn round_trip(batch: Vec<Observation>) -> usize {
        let bytes = encode_to_vec(&ObservationBatch(batch.clone()));
        let back: ObservationBatch = decode_from_slice(&bytes).unwrap();
        assert_eq!(back.0, batch);
        bytes.len()
    }

    #[test]
    fn empty_batch_is_one_byte() {
        assert_eq!(round_trip(vec![]), 1);
    }

    #[test]
    fn typical_stream_round_trips_and_compresses() {
        // A realistic batch: runs of per-camera sequential observations
        // with full-precision (raw) positions.
        let mut batch = Vec::new();
        for camera in 0..4u32 {
            for seq in 0..50u64 {
                batch.push(obs(
                    camera,
                    seq,
                    1_000_000 + seq * 40 + camera as u64,
                    (seq as f64).mul_add(7.31, 13.7),
                    (seq as f64).mul_add(3.77, 101.2),
                ));
            }
        }
        let row = encoded_len(&batch);
        let col = round_trip(batch);
        assert!(
            (col as f64) < row as f64 * 0.92,
            "columnar {col} B not smaller than row {row} B"
        );
    }

    #[test]
    fn grid_aligned_positions_use_fixed_point() {
        // Coordinates that are multiples of 1/1024 m trigger the
        // fixed-point position column and shrink further.
        let aligned: Vec<Observation> = (0..64u64)
            .map(|seq| obs(1, seq, seq * 100, seq as f64 * 0.25, 640.5))
            .collect();
        let mut raw = aligned.clone();
        raw[0].position = Point::new(0.1, 640.5); // 0.1 is not exact in 1/1024
        let aligned_len = round_trip(aligned);
        let raw_len = round_trip(raw);
        assert!(aligned_len < raw_len, "{aligned_len} !< {raw_len}");
    }

    #[test]
    fn hostile_values_round_trip() {
        // Extremes that stress the wrapping delta arithmetic and the
        // fixed-point fallback.
        let mut batch = vec![
            obs(0, 0, 0, f64::NAN, f64::INFINITY),
            obs(u32::MAX, (1 << 40) - 1, u64::MAX, -0.0, 1e300),
            obs(7, 1, 5, f64::MIN_POSITIVE, -1e-300),
        ];
        batch[1].truth = Some(EntityId(u64::MAX));
        batch[2].truth = Some(EntityId(0));
        let bytes = encode_to_vec(&ObservationBatch(batch.clone()));
        let back: ObservationBatch = decode_from_slice(&bytes).unwrap();
        // NaN breaks PartialEq; compare it separately, bit-for-bit.
        assert!(back.0[0].position.x.is_nan());
        assert_eq!(back.0[0].position.y, f64::INFINITY);
        assert_eq!(back.0[1..], batch[1..]);
    }

    #[test]
    fn single_observation_batch_round_trips() {
        round_trip(vec![obs(3, 99, 123_456, 105.5, -2.25)]);
    }

    #[test]
    fn hostile_count_rejected() {
        let mut bytes = Vec::new();
        varint::write_u64(&mut bytes, 1 << 40);
        assert!(matches!(
            decode_from_slice::<ObservationBatch>(&bytes),
            Err(DecodeError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn zero_length_camera_run_rejected() {
        let batch = vec![obs(1, 0, 0, 1.0, 1.0)];
        let mut bytes = encode_to_vec(&ObservationBatch(batch));
        // Locate the camera column: count(1) + flags(1) + first id varint.
        let id_len = varint::len_u64(ObservationId::compose(CameraId(1), 0).0);
        let run_off = 2 + id_len;
        bytes[run_off] = 0; // run length 0
        assert!(matches!(
            decode_from_slice::<ObservationBatch>(&bytes),
            Err(DecodeError::InvalidValue { .. })
        ));
    }

    #[test]
    fn truncated_batch_rejected() {
        let batch: Vec<Observation> = (0..8u64).map(|s| obs(2, s, s, 1.5, 2.5)).collect();
        let bytes = encode_to_vec(&ObservationBatch(batch));
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_from_slice::<ObservationBatch>(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn unknown_flags_rejected() {
        let batch = vec![obs(1, 0, 0, 1.0, 1.0)];
        let mut bytes = encode_to_vec(&ObservationBatch(batch));
        bytes[1] |= 0b1000_0000;
        assert!(matches!(
            decode_from_slice::<ObservationBatch>(&bytes),
            Err(DecodeError::InvalidValue { .. })
        ));
    }
}
