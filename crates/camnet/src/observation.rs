//! Observations: the tuples the framework ingests.

use std::fmt;

use stcam_geo::{Point, Timestamp};
use stcam_world::{EntityClass, EntityId};

use crate::camera::CameraId;
use crate::signature::Signature;

/// Globally unique identifier of an observation, assigned at detection
/// time (camera id in the high bits, per-camera sequence in the low bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObservationId(pub u64);

impl ObservationId {
    /// Composes an id from a camera and its local sequence number.
    pub fn compose(camera: CameraId, seq: u64) -> Self {
        debug_assert!(seq < (1 << 40), "per-camera sequence overflow");
        ObservationId(((camera.0 as u64) << 40) | seq)
    }

    /// The camera that produced this observation.
    pub fn camera(self) -> CameraId {
        CameraId((self.0 >> 40) as u32)
    }

    /// The per-camera sequence number.
    pub fn seq(self) -> u64 {
        self.0 & ((1 << 40) - 1)
    }
}

impl fmt::Display for ObservationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obs{}:{}", self.camera().0, self.seq())
    }
}

/// One geo-located detection reported by a camera.
///
/// This is the unit of ingestion for the whole framework: cameras stream
/// observations, workers index them, and every query operates over them.
/// `truth` carries the ground-truth entity id (or `None` for a false
/// positive) **for evaluation only** — the framework never reads it; the
/// stitching layer must recover identity from position, time and
/// signature alone.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Unique id.
    pub id: ObservationId,
    /// Producing camera.
    pub camera: CameraId,
    /// Detection time.
    pub time: Timestamp,
    /// Geo-located position (true position + localisation noise).
    pub position: Point,
    /// Classified entity class.
    pub class: EntityClass,
    /// Observed appearance signature.
    pub signature: Signature,
    /// Ground truth for scoring; `None` for false positives.
    pub truth: Option<EntityId>,
}

impl Observation {
    /// `true` when this observation is a detector false positive.
    pub fn is_false_positive(&self) -> bool {
        self.truth.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_composition_round_trips() {
        let id = ObservationId::compose(CameraId(123), 456_789);
        assert_eq!(id.camera(), CameraId(123));
        assert_eq!(id.seq(), 456_789);
        assert_eq!(id.to_string(), "obs123:456789");
    }

    #[test]
    fn ids_are_unique_across_cameras_and_sequences() {
        let a = ObservationId::compose(CameraId(1), 5);
        let b = ObservationId::compose(CameraId(2), 5);
        let c = ObservationId::compose(CameraId(1), 6);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn false_positive_flag() {
        let obs = Observation {
            id: ObservationId::compose(CameraId(0), 0),
            camera: CameraId(0),
            time: Timestamp::ZERO,
            position: Point::new(0.0, 0.0),
            class: EntityClass::Car,
            signature: Signature::latent_for_entity(0),
            truth: None,
        };
        assert!(obs.is_false_positive());
    }
}
