//! Individual cameras.

use std::fmt;

use stcam_geo::{BBox, Point, Polygon};

/// Identifier of a camera in the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CameraId(pub u32);

impl fmt::Display for CameraId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cam{}", self.0)
    }
}

/// A fixed camera: mount position, viewing direction, angular field of
/// view, and usable detection range. Its ground coverage is the circular
/// sector swept by the view frustum projected onto the ground plane.
#[derive(Debug, Clone)]
pub struct Camera {
    id: CameraId,
    position: Point,
    heading: f64,
    fov: f64,
    range: f64,
    coverage: Polygon,
}

impl Camera {
    /// Number of rim segments used to approximate the coverage sector.
    const ARC_SEGMENTS: usize = 12;

    /// Creates a camera.
    ///
    /// `heading` is radians counter-clockwise from east; `fov` is the
    /// angular width in radians.
    ///
    /// # Panics
    ///
    /// Panics when `fov` is not in `(0, 2π)` or `range <= 0` (see
    /// [`Polygon::sector`]).
    pub fn new(id: CameraId, position: Point, heading: f64, fov: f64, range: f64) -> Self {
        let coverage = Polygon::sector(position, heading, fov, range, Self::ARC_SEGMENTS);
        Camera {
            id,
            position,
            heading,
            fov,
            range,
            coverage,
        }
    }

    /// This camera's id.
    pub fn id(&self) -> CameraId {
        self.id
    }

    /// Mount position.
    pub fn position(&self) -> Point {
        self.position
    }

    /// Viewing direction, radians CCW from east.
    pub fn heading(&self) -> f64 {
        self.heading
    }

    /// Angular field of view, radians.
    pub fn fov(&self) -> f64 {
        self.fov
    }

    /// Maximum detection distance, metres.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// The ground coverage polygon.
    pub fn coverage(&self) -> &Polygon {
        &self.coverage
    }

    /// Bounding box of the coverage region.
    pub fn coverage_bbox(&self) -> BBox {
        self.coverage.bbox()
    }

    /// `true` when `p` is inside this camera's coverage.
    ///
    /// Checked analytically (distance + angular offset) rather than via
    /// the polygon, so it is exact regardless of arc tessellation.
    pub fn sees(&self, p: Point) -> bool {
        let to_p = p - self.position;
        let dist = to_p.norm();
        if dist > self.range {
            return false;
        }
        if dist < 1e-9 {
            return true;
        }
        let angle = to_p.heading();
        let mut offset = (angle - self.heading).rem_euclid(std::f64::consts::TAU);
        if offset > std::f64::consts::PI {
            offset = std::f64::consts::TAU - offset;
        }
        offset <= self.fov / 2.0 + 1e-12
    }

    /// A representative point well inside the coverage region (one third
    /// of the range along the heading).
    pub fn focus_point(&self) -> Point {
        self.position + Point::from_heading(self.heading) * (self.range / 3.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> Camera {
        // 90° FOV looking east, 100 m range.
        Camera::new(
            CameraId(1),
            Point::new(0.0, 0.0),
            0.0,
            std::f64::consts::FRAC_PI_2,
            100.0,
        )
    }

    #[test]
    fn sees_respects_range_and_angle() {
        let c = cam();
        assert!(c.sees(Point::new(50.0, 0.0)));
        assert!(c.sees(Point::new(50.0, 40.0))); // within 45°
        assert!(!c.sees(Point::new(50.0, 60.0))); // beyond 45°
        assert!(!c.sees(Point::new(150.0, 0.0))); // beyond range
        assert!(!c.sees(Point::new(-10.0, 0.0))); // behind
        assert!(c.sees(Point::new(0.0, 0.0))); // at the mount
    }

    #[test]
    fn sees_handles_wraparound_heading() {
        // Looking west (π), the angular test must wrap correctly.
        let c = Camera::new(
            CameraId(2),
            Point::new(0.0, 0.0),
            std::f64::consts::PI,
            std::f64::consts::FRAC_PI_2,
            100.0,
        );
        assert!(c.sees(Point::new(-50.0, 0.0)));
        assert!(c.sees(Point::new(-50.0, -40.0)));
        assert!(!c.sees(Point::new(50.0, 0.0)));
    }

    #[test]
    fn coverage_polygon_agrees_with_sees() {
        let c = cam();
        // The polygon is an inscribed approximation; points it contains
        // must always be seen.
        for i in 0..200 {
            let x = (i % 20) as f64 * 6.0 - 10.0;
            let y = (i / 20) as f64 * 10.0 - 50.0;
            let p = Point::new(x, y);
            if c.coverage().contains(p) {
                assert!(c.sees(p), "polygon contains {p} but sees() is false");
            }
        }
    }

    #[test]
    fn focus_point_is_seen() {
        let c = cam();
        assert!(c.sees(c.focus_point()));
    }

    #[test]
    fn accessors() {
        let c = cam();
        assert_eq!(c.id(), CameraId(1));
        assert_eq!(c.range(), 100.0);
        assert!(!c.coverage_bbox().is_empty());
        assert_eq!(CameraId(3).to_string(), "cam3");
    }
}
