//! Quickstart: boot a cluster, ingest a camera stream, run each query
//! type.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use stcam::{Cluster, ClusterConfig};
use stcam_camnet::{CameraNetwork, DetectionModel, SensorSim};
use stcam_geo::{BBox, Duration, GridSpec, Point, TimeInterval, Timestamp};
use stcam_world::{World, WorldConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic city: 2 km × 2 km, 200 moving entities.
    let mut world = World::new(WorldConfig::small_town().with_seed(42));
    let extent = world.extent();

    // 2. A camera deployment: 60 cameras on road intersections.
    let cameras = CameraNetwork::deploy_on_roads(world.roads(), 60, 7);
    println!(
        "deployed {} cameras, ground coverage {:.0}%",
        cameras.len(),
        cameras.coverage_fraction(50) * 100.0
    );
    let mut sensors = SensorSim::new(cameras, DetectionModel::default(), 11);

    // 3. A 4-worker cluster.
    let cluster = Cluster::launch(ClusterConfig::new(extent, 4))?;

    // 4. Stream 30 seconds of detections.
    let mut total = 0usize;
    while world.now() < Timestamp::from_secs(30) {
        let frame = sensors.observe(&world);
        total += frame.len();
        cluster.ingest(frame)?;
        world.step(Duration::from_millis(500));
    }
    cluster.flush()?;
    println!("ingested {total} observations over 30 s of city time");

    // 5. Range query: what moved through the central square, seconds 10–20?
    let square = BBox::around(Point::new(1000.0, 1000.0), 250.0);
    let window = TimeInterval::new(Timestamp::from_secs(10), Timestamp::from_secs(20));
    let hits = cluster.range_query(square, window)?;
    println!(
        "range query over the central square: {} observations",
        hits.len()
    );

    // 6. kNN: the 5 sightings closest to a reported incident.
    let incident = Point::new(700.0, 1300.0);
    let nearest = cluster.knn_query(incident, window, 5)?;
    println!("5 sightings nearest to the incident at {incident}:");
    for obs in &nearest {
        println!(
            "  {} at {} ({}, {:.0} m away)",
            obs.id,
            obs.position,
            obs.class,
            incident.distance(obs.position)
        );
    }

    // 7. Heat map: activity per 250 m cell across the whole city.
    let buckets = GridSpec::covering(extent, 250.0);
    let counts = cluster.heatmap(&buckets, window)?;
    let busiest = counts.iter().max().copied().unwrap_or(0);
    println!("busiest 250 m cell saw {busiest} observations in 10 s");

    // 8. Cluster health.
    let stats = cluster.stats()?;
    for (worker, s) in &stats.workers {
        println!(
            "  {worker}: {} primary, {} replica observations",
            s.primary_observations, s.replica_observations
        );
    }
    let net = cluster.fabric_stats();
    println!(
        "network: {} messages, {:.1} KiB total",
        net.total_msgs,
        net.total_bytes as f64 / 1024.0
    );

    cluster.shutdown();
    Ok(())
}
