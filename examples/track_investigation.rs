//! Forensic trajectory reconstruction: "where did this vehicle go?"
//!
//! Streams a day-in-the-life of a camera network into the cluster, then
//! — after the fact — pulls the observations around a starting sighting,
//! stitches tracklets across cameras, and reconstructs the target's path,
//! scoring it against the simulator's ground truth.
//!
//! ```text
//! cargo run --example track_investigation --release
//! ```

use stcam::stitch::{build_tracklets, score_links, stitch_handoff, StitchConfig};
use stcam::{Cluster, ClusterConfig};
use stcam_camnet::{CameraNetwork, DetectionModel, SensorSim, TransitionModel};
use stcam_geo::{Duration, Point, TimeInterval, Timestamp};
use stcam_world::{EntityId, MobilityModel, World, WorldConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // City + camera network + detector.
    let config = WorldConfig::small_town()
        .with_seed(77)
        .with_mobility(MobilityModel::Trip)
        .with_total_entities(150);
    let mut world = World::new(config);
    let network = CameraNetwork::deploy_on_roads(world.roads(), 90, 3);
    let transitions = TransitionModel::from_network(&network, world.roads());
    let mut sensors = SensorSim::new(network, DetectionModel::default(), 4);

    // Ingest two minutes of city life.
    let cluster = Cluster::launch(ClusterConfig::new(world.extent(), 6))?;
    while world.now() < Timestamp::from_secs(120) {
        cluster.ingest(sensors.observe(&world))?;
        world.step(Duration::from_millis(500));
    }
    cluster.flush()?;
    println!(
        "archive ready: {} observations",
        cluster.stats()?.total_primary()
    );

    // The investigation: pick the most-sighted entity as the "target"
    // (in a real deployment this would come from an operator clicking a
    // detection).
    let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(120));
    let everything = cluster.range_query(world.extent().inflated(500.0), window)?;
    let mut sightings_per_entity = std::collections::HashMap::<EntityId, usize>::new();
    for obs in &everything {
        if let Some(e) = obs.truth {
            *sightings_per_entity.entry(e).or_default() += 1;
        }
    }
    let (&target, &count) = sightings_per_entity
        .iter()
        .max_by_key(|(e, c)| (**c, e.0))
        .expect("stream is non-empty");
    println!("target: entity {target} with {count} raw sightings");

    // Stitch the full result set (the stitcher does not know the target —
    // it reconstructs everyone, we then read off the target's chain).
    let stitch_config = StitchConfig::default();
    let tracklets = build_tracklets(&everything, &stitch_config);
    let tracks = stitch_handoff(&tracklets, sensors.network(), &transitions, &stitch_config);
    let score = score_links(&tracklets, &tracks);
    println!(
        "stitching: {} tracklets → {} global tracks (link precision {:.2}, recall {:.2})",
        tracklets.len(),
        tracks.len(),
        score.precision(),
        score.recall()
    );

    // The target's reconstructed journey: its longest global track.
    let target_track = tracks
        .iter()
        .filter(|t| {
            t.tracklets
                .iter()
                .any(|&i| tracklets[i].majority_truth() == Some(target))
        })
        .max_by_key(|t| t.tracklets.len())
        .expect("target has at least one tracklet");
    println!(
        "\nreconstructed journey ({} camera visits):",
        target_track.tracklets.len()
    );
    let mut reconstruction_error = 0.0f64;
    let mut samples = 0usize;
    for &idx in &target_track.tracklets {
        let tracklet = &tracklets[idx];
        let first = tracklet.observations.first().expect("non-empty");
        let last = tracklet.observations.last().expect("non-empty");
        println!(
            "  {} → {}  camera {}  ({} detections, class {})",
            first.time,
            last.time,
            tracklet.camera,
            tracklet.observations.len(),
            tracklet.class()
        );
        for obs in &tracklet.observations {
            if let Some(true_pos) = world.ground_truth().position_at(target, obs.time) {
                reconstruction_error += obs.position.distance(true_pos);
                samples += 1;
            }
        }
    }
    if samples > 0 {
        println!(
            "\nmean position error vs ground truth: {:.1} m over {samples} samples",
            reconstruction_error / samples as f64
        );
    }

    // Where was the target last seen heading?
    let last_tracklet = &tracklets[*target_track.tracklets.last().expect("non-empty")];
    let exit: Point = last_tracklet
        .observations
        .last()
        .expect("non-empty")
        .position;
    println!("last confirmed position: {exit} at {}", last_tracklet.end());

    cluster.shutdown();
    Ok(())
}
