//! Archive backup and restore: export a cluster's observation archive to
//! a checksummed byte stream, then restore it into a larger cluster —
//! the capacity-upgrade path for a growing deployment.
//!
//! ```text
//! cargo run --example archive_backup --release
//! ```

use stcam::snapshot::{export_archive, import_archive};
use stcam::{Cluster, ClusterConfig};
use stcam_camnet::{CameraNetwork, DetectionModel, SensorSim};
use stcam_geo::{Duration, TimeInterval, Timestamp};
use stcam_world::{World, WorldConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Day one: a small 2-worker deployment fills up.
    let mut world = World::new(WorldConfig::small_town().with_seed(12));
    let cameras = CameraNetwork::deploy_on_roads(world.roads(), 70, 13);
    let mut sensors = SensorSim::new(cameras, DetectionModel::default(), 14);
    let small = Cluster::launch(ClusterConfig::new(world.extent(), 2).with_replication(0))?;
    while world.now() < Timestamp::from_secs(45) {
        small.ingest(sensors.observe(&world))?;
        world.step(Duration::from_millis(500));
    }
    small.flush()?;
    let stats = small.stats()?;
    println!(
        "small cluster: {} observations across {} workers",
        stats.total_primary(),
        stats.workers.len()
    );

    // Nightly backup.
    let region = world.extent().inflated(500.0);
    let archive = export_archive(&small, region)?;
    println!(
        "exported archive: {:.1} KiB in CRC-framed batches",
        archive.len() as f64 / 1024.0
    );
    let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(60));
    let reference = small.range_query(region, window)?;
    small.shutdown();

    // Capacity upgrade: restore into an 8-worker cluster.
    let big = Cluster::launch(ClusterConfig::new(world.extent(), 8).with_replication(1))?;
    let imported = import_archive(&big, &archive)?;
    big.flush()?;
    println!("restored {imported} observations into the 8-worker cluster");

    // The archive is bit-identical under queries.
    let restored = big.range_query(region, window)?;
    assert_eq!(restored.len(), reference.len());
    assert!(
        restored.iter().zip(&reference).all(|(a, b)| a == b),
        "restored archive differs"
    );
    println!(
        "verification: all {} observations identical after restore",
        restored.len()
    );

    // Corruption is detected, not silently imported.
    let mut corrupt = archive.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x01;
    let fresh = Cluster::launch(ClusterConfig::new(world.extent(), 2))?;
    match import_archive(&fresh, &corrupt) {
        Err(e) => println!("corrupted archive rejected as expected: {e}"),
        Ok(_) => panic!("corruption went undetected"),
    }
    fresh.shutdown();
    big.shutdown();
    Ok(())
}
