//! Operations drill: worker failures under live ingest.
//!
//! Streams detections into a replicated cluster, kills workers one at a
//! time while the stream keeps flowing, triggers recovery, and audits
//! data completeness after each failure.
//!
//! ```text
//! cargo run --example failover_drill --release
//! ```

use std::time::Instant;

use stcam::{Cluster, ClusterConfig};
use stcam_camnet::{CameraNetwork, DetectionModel, SensorSim};
use stcam_geo::{Duration, TimeInterval, Timestamp};
use stcam_net::NodeId;
use stcam_world::{World, WorldConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut world = World::new(WorldConfig::small_town().with_seed(5));
    let cameras = CameraNetwork::deploy_on_roads(world.roads(), 80, 6);
    let mut sensors = SensorSim::new(cameras, DetectionModel::default(), 7);

    let cluster = Cluster::launch(ClusterConfig::new(world.extent(), 8).with_replication(2))?;
    println!("8 workers, replication factor 2\n");

    let mut sent_total = 0usize;
    let mut stream = |world: &mut World, cluster: &Cluster, secs: u64| -> usize {
        let until = world.now() + Duration::from_secs(secs);
        let mut sent = 0;
        while world.now() < until {
            let frame = sensors.observe(world);
            sent += frame.len();
            cluster.ingest(frame).expect("ingest");
            world.step(Duration::from_millis(500));
        }
        cluster.flush().expect("flush");
        sent
    };

    let audit = |cluster: &Cluster, expected: usize, label: &str| {
        let window = TimeInterval::new(Timestamp::ZERO, Timestamp::from_secs(1_000_000));
        let held = cluster
            .range_query(cluster.config().extent.inflated(500.0), window)
            .expect("audit query")
            .len();
        let loss = expected.saturating_sub(held);
        println!(
            "  audit {label}: {held}/{expected} observations present ({loss} lost, {:.3}%)",
            loss as f64 * 100.0 / expected.max(1) as f64
        );
        held
    };

    // Baseline period.
    sent_total += stream(&mut world, &cluster, 20);
    println!("after 20 s of ingest:");
    audit(&cluster, sent_total, "pre-failure");

    for (round, victim) in [NodeId(3), NodeId(4), NodeId(7)].into_iter().enumerate() {
        println!("\n--- drill round {}: killing {victim} ---", round + 1);
        cluster.kill_worker(victim);
        let t0 = Instant::now();
        let failed = cluster.check_and_recover();
        let recovery = t0.elapsed();
        println!("  detected + recovered {failed:?} in {recovery:.2?}");
        audit(&cluster, sent_total, "post-recovery");

        // Traffic keeps flowing to the survivors.
        sent_total += stream(&mut world, &cluster, 10);
        audit(&cluster, sent_total, "post-ingest");

        let stats = cluster.stats()?;
        println!(
            "  survivors: {} workers, imbalance {:.2}",
            stats.workers.len(),
            stats.imbalance()
        );
    }

    let net = cluster.fabric_stats();
    println!(
        "\nnetwork totals: {} msgs, {:.1} MiB, {} dropped",
        net.total_msgs,
        net.total_bytes as f64 / (1024.0 * 1024.0),
        net.total_dropped
    );
    cluster.shutdown();
    Ok(())
}
