//! Live city monitoring: standing queries and rolling heat maps.
//!
//! Models an operations-centre workload: a geo-fence alert on trucks
//! entering the downtown core, plus a crowd-density heat map refreshed
//! every 10 simulated seconds, over a live stream from 2 000 entities.
//!
//! ```text
//! cargo run --example city_monitoring --release
//! ```

use std::time::Duration as StdDuration;

use stcam::{Cluster, ClusterConfig, Predicate};
use stcam_camnet::{CameraNetwork, DetectionModel, SensorSim};
use stcam_geo::{BBox, Duration, GridSpec, Point, TimeInterval, Timestamp};
use stcam_world::{EntityClass, MobilityModel, Placement, World, WorldConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4 km × 4 km city with a busy downtown hotspot.
    let extent = BBox::new(Point::new(0.0, 0.0), Point::new(4000.0, 4000.0));
    let downtown = Point::new(2000.0, 2000.0);
    let world_config = WorldConfig {
        extent,
        road_spacing: 250.0,
        class_counts: [800, 200, 800, 200],
        mobility: MobilityModel::Trip,
        placement: Placement::Hotspot {
            centers: vec![downtown],
            sigma: 500.0,
            fraction: 0.6,
        },
        record_interval: Duration::from_secs(1),
        churn_per_minute: 0.0,
        seed: 2024,
    };
    let mut world = World::new(world_config);
    let cameras = CameraNetwork::deploy_clustered(world.roads(), 200, 5, &[downtown], 500.0, 8.0);
    let mut sensors = SensorSim::new(cameras, DetectionModel::default(), 9);

    let cluster = Cluster::launch(ClusterConfig::new(extent, 8))?;

    // Standing query: any truck inside the downtown core.
    let core = BBox::around(downtown, 600.0);
    let truck_alert = cluster.register_continuous(Predicate {
        region: core,
        class: Some(EntityClass::Truck),
    })?;
    println!("registered geo-fence {truck_alert}: trucks in the downtown core\n");

    let buckets = GridSpec::covering(extent, 500.0);
    let mut alerts_total = 0usize;

    for epoch in 0..6 {
        // Stream 10 seconds of city time.
        let until = Timestamp::from_secs((epoch + 1) * 10);
        while world.now() < until {
            cluster.ingest(sensors.observe(&world))?;
            world.step(Duration::from_millis(500));
        }
        cluster.flush()?;

        // Drain geo-fence alerts.
        let notifications = cluster.poll_notifications(StdDuration::from_millis(200));
        let alerts: usize = notifications
            .iter()
            .filter(|n| n.query == truck_alert)
            .map(|n| n.matches.len())
            .sum();
        alerts_total += alerts;

        // Rolling density heat map for the last 10 seconds.
        let window = TimeInterval::new(until.saturating_sub(Duration::from_secs(10)), until);
        let counts = cluster.heatmap(&buckets, window)?;
        println!("t = {until}: {alerts} truck sightings in the core; density map:");
        render(&buckets, &counts);
        println!();
    }

    println!("total truck alerts over 60 s: {alerts_total}");
    let stats = cluster.stats()?;
    println!(
        "stored observations: {} (imbalance {:.2})",
        stats.total_primary(),
        stats.imbalance()
    );
    cluster.shutdown();
    Ok(())
}

/// Renders a count grid as ASCII shades.
fn render(buckets: &GridSpec, counts: &[u64]) {
    let max = counts.iter().copied().max().unwrap_or(0).max(1);
    let shades = [' ', '.', ':', '+', '*', '#'];
    for row in (0..buckets.rows()).rev() {
        let mut line = String::from("  ");
        for col in 0..buckets.cols() {
            let count = counts[row as usize * buckets.cols() as usize + col as usize];
            let shade = (count * (shades.len() as u64 - 1)).div_ceil(max) as usize;
            line.push(shades[shade.min(shades.len() - 1)]);
        }
        println!("{line}");
    }
}
